"""Tests for the simulated NIC: Toeplitz RSS, redirection table, device."""

import ipaddress

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.filter import compile_filter
from repro.nic import (
    SYMMETRIC_RSS_KEY,
    RedirectionTable,
    SimNic,
    rss_input_bytes,
    toeplitz_hash,
)
from repro.packet import Mbuf, build_tcp_packet, build_udp_packet, parse_stack


class TestToeplitz:
    def test_known_microsoft_vector(self):
        """Verification suite vector from the MS RSS specification."""
        key = bytes.fromhex(
            "6d5a56da255b0ec24167253d43a38fb0"
            "d0ca2bcbae7b30b477cb2da38030f20c"
            "6a42b73bbeac01fa"
        )
        # IPv4: src 66.9.149.187:2794 -> dst 161.142.100.80:1766
        data = (
            ipaddress.ip_address("66.9.149.187").packed
            + ipaddress.ip_address("161.142.100.80").packed
            + (2794).to_bytes(2, "big")
            + (1766).to_bytes(2, "big")
        )
        assert toeplitz_hash(key, data) == 0x51CCC178

    def test_known_microsoft_vector_ipv6(self):
        key = bytes.fromhex(
            "6d5a56da255b0ec24167253d43a38fb0"
            "d0ca2bcbae7b30b477cb2da38030f20c"
            "6a42b73bbeac01fa"
        )
        data = (
            ipaddress.ip_address("3ffe:2501:200:1fff::7").packed
            + ipaddress.ip_address("3ffe:2501:200:3::1").packed
            + (2794).to_bytes(2, "big")
            + (1766).to_bytes(2, "big")
        )
        assert toeplitz_hash(key, data) == 0x40207D3D

    def test_key_too_short(self):
        with pytest.raises(ValueError):
            toeplitz_hash(b"\x01\x02", b"\x00" * 12)

    @settings(max_examples=50, deadline=None)
    @given(
        src=st.integers(0, 2 ** 32 - 1),
        dst=st.integers(0, 2 ** 32 - 1),
        sport=st.integers(0, 65535),
        dport=st.integers(0, 65535),
    )
    def test_symmetry_property(self, src, dst, sport, dport):
        """With the 0x6d5a key, swapping direction preserves the hash —
        the property that makes per-core connection tables safe."""
        fwd = (
            src.to_bytes(4, "big") + dst.to_bytes(4, "big")
            + sport.to_bytes(2, "big") + dport.to_bytes(2, "big")
        )
        rev = (
            dst.to_bytes(4, "big") + src.to_bytes(4, "big")
            + dport.to_bytes(2, "big") + sport.to_bytes(2, "big")
        )
        assert toeplitz_hash(SYMMETRIC_RSS_KEY, fwd) == \
            toeplitz_hash(SYMMETRIC_RSS_KEY, rev)

    def test_symmetry_ipv6(self):
        fwd = (
            ipaddress.ip_address("2001:db8::1").packed
            + ipaddress.ip_address("2001:db8::2").packed
            + (443).to_bytes(2, "big") + (51000).to_bytes(2, "big")
        )
        rev = (
            ipaddress.ip_address("2001:db8::2").packed
            + ipaddress.ip_address("2001:db8::1").packed
            + (51000).to_bytes(2, "big") + (443).to_bytes(2, "big")
        )
        assert toeplitz_hash(SYMMETRIC_RSS_KEY, fwd) == \
            toeplitz_hash(SYMMETRIC_RSS_KEY, rev)


class TestRssInput:
    def test_tcp_four_tuple(self):
        stack = parse_stack(Mbuf(build_tcp_packet("1.2.3.4", "5.6.7.8",
                                                  10, 20)))
        data = rss_input_bytes(stack)
        assert data == bytes([1, 2, 3, 4, 5, 6, 7, 8, 0, 10, 0, 20])

    def test_non_ip_none(self):
        assert rss_input_bytes(parse_stack(Mbuf(b"\x00" * 64))) is None

    def test_ip_only_uses_addresses(self):
        # ICMP-ish: protocol 1, no transport parse.
        from repro.packet.builder import build_ethernet, build_ipv4
        from repro.packet.ethernet import ETHERTYPE_IPV4
        frame = build_ethernet(
            build_ipv4(b"\x08\x00\x00\x00", "1.1.1.1", "2.2.2.2", 1),
            ETHERTYPE_IPV4,
        )
        data = rss_input_bytes(parse_stack(Mbuf(frame)))
        assert data == bytes([1, 1, 1, 1, 2, 2, 2, 2])


class TestRedirectionTable:
    def test_round_robin_default(self):
        table = RedirectionTable(4, size=8)
        assert table.entries == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_lookup_modulo(self):
        table = RedirectionTable(4, size=8)
        assert table.lookup(9) == table.entries[1]

    def test_sink_fraction(self):
        table = RedirectionTable(4, size=128)
        table.set_sink_fraction(0.25, SimNic.SINK)
        sink_entries = sum(1 for e in table.entries if e == SimNic.SINK)
        assert sink_entries == 32
        # Remaining entries still cover all queues.
        live = {e for e in table.entries if e != SimNic.SINK}
        assert live == {0, 1, 2, 3}

    def test_sink_reset(self):
        table = RedirectionTable(2, size=16)
        table.set_sink_fraction(0.5, SimNic.SINK)
        table.set_sink_fraction(0.0, SimNic.SINK)
        assert SimNic.SINK not in table.entries
        assert table.sink_queue is None

    def test_invalid_fraction(self):
        table = RedirectionTable(2)
        with pytest.raises(ValueError):
            table.set_sink_fraction(1.5, SimNic.SINK)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            RedirectionTable(0)
        with pytest.raises(ValueError):
            RedirectionTable(8, size=4)


class TestSimNic:
    def test_flow_affinity(self):
        """All packets of a connection (both directions) share a queue."""
        nic = SimNic(num_queues=8)
        fwd = Mbuf(build_tcp_packet("10.0.0.1", "10.0.0.2", 1234, 443))
        rev = Mbuf(build_tcp_packet("10.0.0.2", "10.0.0.1", 443, 1234))
        assert nic.receive(fwd) == nic.receive(rev)
        assert fwd.queue == rev.queue

    def test_load_spread(self):
        """Many distinct flows spread across all queues."""
        nic = SimNic(num_queues=4)
        for i in range(400):
            mbuf = Mbuf(build_tcp_packet(f"10.0.{i % 250}.{i // 250 + 1}",
                                         "192.168.0.1", 1000 + i, 443))
            nic.receive(mbuf)
        used = set(nic.stats.dispatched_packets)
        assert used == {0, 1, 2, 3}
        counts = list(nic.stats.dispatched_packets.values())
        assert min(counts) > 0.5 * max(counts)  # roughly balanced

    def test_hardware_filter_drops(self):
        nic = SimNic(num_queues=2)
        nic.install_hardware_filter(
            compile_filter("tcp.port = 443 and ipv4").hardware)
        https = Mbuf(build_tcp_packet("1.1.1.1", "2.2.2.2", 1, 443))
        dns = Mbuf(build_udp_packet("1.1.1.1", "2.2.2.2", 53, 53))
        assert nic.receive(https) is not None
        assert nic.receive(dns) is None
        assert nic.stats.hw_dropped_packets == 1

    def test_sink_sampling_flow_consistent(self):
        nic = SimNic(num_queues=2)
        nic.set_sink_fraction(0.5)
        outcomes = {}
        for i in range(200):
            src = f"10.1.{i % 200}.7"
            first = nic.receive(Mbuf(build_tcp_packet(src, "8.8.8.8",
                                                      5000 + i, 443)))
            second = nic.receive(Mbuf(build_tcp_packet(src, "8.8.8.8",
                                                       5000 + i, 443)))
            assert first == second  # same four-tuple, same fate
            outcomes[i] = first
        dropped = sum(1 for q in outcomes.values() if q is None)
        assert 0.3 < dropped / len(outcomes) < 0.7

    def test_non_ip_goes_to_queue_zero(self):
        nic = SimNic(num_queues=4)
        assert nic.receive(Mbuf(b"\x00" * 64)) == 0

    def test_receive_burst_groups(self):
        nic = SimNic(num_queues=2)
        mbufs = [
            Mbuf(build_tcp_packet("10.0.0.1", "10.0.0.2", 1000 + i, 80))
            for i in range(20)
        ]
        queues = nic.receive_burst(mbufs)
        assert sum(len(v) for v in queues.values()) == 20

    def test_bad_config(self):
        with pytest.raises(ConfigError):
            SimNic(num_queues=0)

    def test_hash_cache_consistent(self):
        nic = SimNic(num_queues=4, hash_cache_size=2)
        mbuf = Mbuf(build_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2))
        q1 = nic.receive(mbuf)
        # Overflow the cache with other flows, then re-receive.
        for i in range(5):
            nic.receive(Mbuf(build_tcp_packet("10.9.0.1", "10.0.0.2",
                                              100 + i, 2)))
        q2 = nic.receive(Mbuf(build_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2)))
        assert q1 == q2
