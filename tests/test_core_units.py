"""Unit tests for core support modules: cycle ledger, aggregate stats
derivations, subscription planning, and generated-code structure."""

import pytest

from repro import (
    CostModel,
    CycleLedger,
    RuntimeConfig,
    Stage,
    Subscription,
    compile_filter,
)
from repro.core.stats import AggregateStats


class TestCostModel:
    def test_defaults_match_figure7(self):
        model = CostModel()
        assert model.packet_filter == 102.9
        assert model.conn_track == 41.6
        assert model.reassembly == 353.8
        assert model.parsing == 2122.9
        assert model.session_filter == 702.3
        assert model.hardware_filter == 0.0

    def test_cost_of_and_with_callback(self):
        model = CostModel().with_callback(5000.0)
        assert model.cost_of(Stage.CALLBACK) == 5000.0
        assert model.cost_of(Stage.PACKET_FILTER) == 102.9


class TestCycleLedger:
    def test_charge_accumulates(self):
        ledger = CycleLedger()
        ledger.charge(Stage.PACKET_FILTER, invocations=10)
        assert ledger.invocations[Stage.PACKET_FILTER] == 10
        assert ledger.cycles[Stage.PACKET_FILTER] == pytest.approx(1029.0)

    def test_charge_cycles_explicit(self):
        ledger = CycleLedger()
        ledger.charge_cycles(Stage.CALLBACK, 12345.0)
        assert ledger.cycles[Stage.CALLBACK] == 12345.0
        assert ledger.invocations[Stage.CALLBACK] == 1

    def test_busy_seconds(self):
        ledger = CycleLedger(CostModel(cpu_hz=1e9))
        ledger.charge_cycles(Stage.CALLBACK, 5e8)
        assert ledger.busy_seconds == pytest.approx(0.5)

    def test_merge(self):
        a, b = CycleLedger(), CycleLedger()
        a.charge(Stage.CONN_TRACK, 3)
        b.charge(Stage.CONN_TRACK, 4)
        a.merge(b)
        assert a.invocations[Stage.CONN_TRACK] == 7

    def test_snapshot_shape(self):
        snap = CycleLedger().snapshot()
        assert set(snap) == {s.value for s in Stage}
        assert snap["parsing"] == {"invocations": 0, "cycles": 0.0}


def _stats(**overrides):
    default_cycles = {s: 0.0 for s in Stage}
    # Non-zero work so derived ceilings are finite.
    default_cycles[Stage.PACKET_FILTER] = 102_900.0
    base = dict(
        cores=4,
        cost_model=CostModel(),
        duration=1.0,
        ingress_packets=1000,
        ingress_bytes=1_000_000,
        hw_dropped_packets=0,
        sink_dropped_packets=0,
        processed_packets=1000,
        processed_bytes=1_000_000,
        callbacks=10,
        sessions_parsed=10,
        sessions_matched=10,
        conns_created=20,
        conns_delivered=10,
        stage_invocations={s: 0 for s in Stage},
        stage_cycles=default_cycles,
        per_core_busy_seconds=[0.1, 0.1, 0.1, 0.1],
        memory_samples=[(0.0, 5, 1000), (1.0, 8, 2000)],
    )
    base.update(overrides)
    return AggregateStats(**base)


class TestAggregateStats:
    def test_offered_rate(self):
        stats = _stats()
        assert stats.offered_rate_gbps == pytest.approx(0.008)

    def test_zero_loss_ceiling_balanced(self):
        # 4 cores each busy 0.1s for 250KB of their share:
        # per-core rate = 250KB / 0.1s; x4 cores x8 bits.
        stats = _stats()
        expected = (250_000 / 0.1) * 4 * 8 / 1e9
        assert stats.max_zero_loss_gbps() == pytest.approx(expected)

    def test_zero_loss_uses_busiest_core(self):
        balanced = _stats()
        skewed = _stats(per_core_busy_seconds=[0.4, 0.0, 0.0, 0.0])
        assert skewed.max_zero_loss_gbps() < \
            balanced.max_zero_loss_gbps()

    def test_loss_fraction(self):
        ok = _stats()
        assert ok.loss_fraction == 0.0
        overloaded = _stats(per_core_busy_seconds=[2.0, 0.1, 0.1, 0.1])
        assert overloaded.loss_fraction == pytest.approx(0.5)

    def test_stage_fractions_and_means(self):
        inv = {s: 0 for s in Stage}
        cyc = {s: 0.0 for s in Stage}
        inv[Stage.PACKET_FILTER] = 500
        cyc[Stage.PACKET_FILTER] = 51_450.0
        stats = _stats(stage_invocations=inv, stage_cycles=cyc)
        assert stats.stage_fractions()[Stage.PACKET_FILTER] == 0.5
        assert stats.stage_mean_cycles()[Stage.PACKET_FILTER] == \
            pytest.approx(102.9)
        assert stats.stage_mean_cycles()[Stage.PARSING] == 0.0

    def test_memory_peaks(self):
        stats = _stats()
        assert stats.peak_memory_bytes == 2000
        assert stats.peak_live_connections == 8

    def test_describe_mentions_key_numbers(self):
        text = _stats().describe()
        assert "1000 pkts" in text
        assert "zero-loss ceiling" in text


class TestSubscriptionPlanning:
    def _sub(self, filter_str, datatype, **kwargs):
        return Subscription(filter_str, datatype, lambda x: None, **kwargs)

    def test_packet_fast_path_plan(self):
        sub = self._sub("ipv4", "packet")
        assert not sub.needs_conntrack
        assert not sub.needs_probe
        assert not sub.buffers_packets

    def test_packet_with_conn_filter_plan(self):
        sub = self._sub("http", "packet")
        assert sub.needs_conntrack
        assert sub.buffers_packets
        assert sub.probe_protocols == {"http"}

    def test_connection_matchall_plan(self):
        sub = self._sub("", "connection")
        assert sub.needs_conntrack
        assert not sub.needs_probe

    def test_session_subscription_restricts_probes(self):
        sub = self._sub("", "tls_handshake")
        assert sub.probe_protocols == {"tls"}
        assert sub.needs_reassembly

    def test_identify_services_widens_probes(self):
        sub = self._sub("", "connection", identify_services=True)
        assert sub.probe_protocols == \
            {"tls", "http", "ssh", "dns", "quic"}

    def test_filter_protocols_probed_for_connection_level(self):
        sub = self._sub("ssh", "connection")
        assert sub.probe_protocols == {"ssh"}


class TestGeneratedCodeStructure:
    def test_fig3_packet_filter_shape(self):
        """Golden structural checks on the generated source."""
        source = compile_filter(
            "(ipv4 and tcp.port >= 100 and tls.sni ~ 'netflix') or http"
        ).generated_source
        assert "def packet_filter(mbuf):" in source
        assert "def connection_filter(conn, pkt_term_node):" in source
        assert "def session_filter(session, conn_term_node):" in source
        # The if-let ladder reads each parse-once stack slot at most
        # once per branch (no re-parsing of headers per filter layer).
        assert source.count("ipv4 = stack.ipv4") == 1
        assert source.count("ipv6 = stack.ipv6") == 1
        assert "parse_from" not in source
        # The >= predicate expands to both port accessors.
        assert "tcp.src_port()" in source and "tcp.dst_port()" in source
        # Regexes are hoisted (lazy_static), not inline literals.
        assert "RE0.search" in source
        assert "re.compile" not in source

    def test_no_regex_recompilation_at_runtime(self):
        compiled = compile_filter("tls.sni ~ 'x+'")
        pool_keys = [k for k in compiled.generated_source.split()
                     if k.startswith("RE")]
        assert pool_keys  # at least one hoisted regex constant

    def test_match_all_generates_trivial_filter(self):
        source = compile_filter("").generated_source
        assert "return _terminal(0)" in source
