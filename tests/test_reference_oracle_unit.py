"""Unit tests for the reference (oracle) filter evaluator itself."""

from types import SimpleNamespace

import pytest

from repro.filter.parser import parse_filter
from repro.filter.reference import FlowView, flow_matches
from repro.packet import Mbuf, build_icmp_echo, build_tcp_packet, \
    build_udp_packet


def tls_session(sni="a.example.com", cipher="TLS_AES_128_GCM_SHA256"):
    data = SimpleNamespace(
        sni=lambda: sni, cipher=lambda: cipher,
        version=lambda: "TLS 1.3", client_version=lambda: "TLS 1.2",
        cert_count=lambda: 2,
    )
    return SimpleNamespace(protocol="tls", data=data)


def view(packets, service=None, sessions=()):
    return FlowView([Mbuf(p) for p in packets], service, sessions)


TCP443 = build_tcp_packet("10.0.0.1", "171.64.1.1", 40000, 443)
TCP80 = build_tcp_packet("10.0.0.1", "171.64.1.1", 40000, 80)
UDP53 = build_udp_packet("10.0.0.1", "8.8.8.8", 5000, 53)
ICMP = build_icmp_echo("10.0.0.1", "8.8.8.8")


class TestFlowMatches:
    def test_match_all(self):
        assert flow_matches(parse_filter(""), view([TCP443]))

    def test_packet_layer(self):
        assert flow_matches(parse_filter("tcp.port = 443"), view([TCP443]))
        assert not flow_matches(parse_filter("tcp.port = 443"),
                                view([TCP80]))

    def test_any_packet_witnesses(self):
        flow = view([TCP80, TCP443])
        assert flow_matches(parse_filter("tcp.port = 443"), flow)

    def test_conjunction_needs_single_packet_witness(self):
        # port=443 and port=80 can never hold on one packet, even
        # though the flow contains each.
        flow = view([TCP80, TCP443])
        assert not flow_matches(
            parse_filter("tcp.dst_port = 443 and tcp.dst_port = 80"),
            flow)

    def test_connection_layer(self):
        assert flow_matches(parse_filter("tls"),
                            view([TCP443], service="tls"))
        assert not flow_matches(parse_filter("tls"),
                                view([TCP443], service="http"))
        assert not flow_matches(parse_filter("tls"), view([TCP443]))

    def test_session_layer(self):
        flow = view([TCP443], "tls", [tls_session("video.netflix.com")])
        assert flow_matches(parse_filter("tls.sni ~ 'netflix'"), flow)
        assert not flow_matches(parse_filter("tls.sni ~ 'youtube'"), flow)

    def test_any_session_witnesses(self):
        flow = view([TCP443], "tls",
                    [tls_session("a.org"), tls_session("b.netflix.com")])
        assert flow_matches(parse_filter("tls.sni ~ 'netflix'"), flow)

    def test_disjunction(self):
        flow = view([UDP53], service="dns",
                    sessions=[SimpleNamespace(
                        protocol="dns",
                        data=SimpleNamespace(query_name=lambda: "x.com",
                                             query_type=lambda: "A",
                                             response_code=lambda: 0))])
        assert flow_matches(parse_filter("tls or dns"), flow)

    def test_icmp_packets(self):
        assert flow_matches(parse_filter("icmp.type = 8"), view([ICMP]))
        assert not flow_matches(parse_filter("icmp.type = 0"),
                                view([ICMP]))

    def test_session_protocol_mismatch(self):
        flow = view([TCP443], "tls", [tls_session()])
        # An http session predicate can't be witnessed by a TLS session.
        assert not flow_matches(
            parse_filter("http.user_agent ~ 'x'"), flow)

    def test_int_session_field(self):
        flow = view([TCP443], "tls", [tls_session()])
        assert flow_matches(parse_filter("tls.cert_count > 1"), flow)
        assert not flow_matches(parse_filter("tls.cert_count > 5"), flow)
