"""Telemetry subsystem: registry, funnel, tracing, exporters, monitor.

The load-bearing guarantees under test:

* the filter-funnel invariant (survivors monotonically non-increasing)
  holds for the entire filter corpus, on both backends;
* sequential and parallel runs produce byte-identical Prometheus and
  NDJSON trace exports at 1/2/4 workers;
* the monitor no longer drops the final partial interval and no longer
  flags "sustained" loss off a single lossy sample.
"""

import json

import pytest

from repro import Runtime, RuntimeConfig
from repro.core.monitor import MonitorSample, StatsMonitor
from repro.telemetry import (
    ConnectionTracer,
    MetricsRegistry,
    NULL_RECORDER,
    build_funnel,
    check_funnel,
    stable_sample_hash,
)
from repro.telemetry import export
from repro.telemetry.trace import sort_trace_events, trace_event_dicts
from repro.traffic import CampusTrafficGenerator
from tests.test_filter_compile import _FILTERS


def _campus(seed=23, duration=0.3, gbps=0.1):
    return list(CampusTrafficGenerator(seed=seed).packets(
        duration=duration, gbps=gbps))


def _run(traffic, filter_str="tcp", datatype="connection", cores=4,
         parallel=False, monitor=None, **config_kwargs):
    config = RuntimeConfig(cores=cores, parallel=parallel,
                           **config_kwargs)
    runtime = Runtime(config, filter_str=filter_str, datatype=datatype,
                      callback=None)
    return runtime.run(iter(traffic), monitor=monitor)


@pytest.fixture(scope="module")
def traffic():
    return _campus()


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("pkts_total", "packets", label_names=("q",))
        c.inc(labels=("0",))
        c.inc(4, labels=("0",))
        c.inc(2, labels=("1",))
        assert dict(c.samples()) == {'pkts_total{q="0"}': 5,
                                     'pkts_total{q="1"}': 2}
        with pytest.raises(ValueError):
            c.inc(-1, labels=("0",))

    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_gauge_merges_by_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("hw").max(3)
        a.gauge("hw").max(2)  # below the high-water mark
        b.gauge("hw").set(7)
        a.merge(b)
        assert dict(a.get("hw").samples()) == {"hw": 7}

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "latency", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 5.0, 50.0):
            h.observe(v)
        samples = dict(h.samples())
        assert samples['lat_bucket{le="1"}'] == 1
        assert samples['lat_bucket{le="10"}'] == 3
        assert samples['lat_bucket{le="+Inf"}'] == 4
        assert samples["lat_count"] == 4
        assert samples["lat_sum"] == pytest.approx(60.5)

    def test_histogram_load_merges_bucket_counts(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "", buckets=(1.0, 10.0))
        h.load([1, 2, 3], 100.0)
        h.load([1, 0, 0], 0.5)
        assert dict(h.samples())['lat_bucket{le="+Inf"}'] == 7

    def test_volatile_excluded_from_default_render(self):
        reg = MetricsRegistry()
        reg.counter("stable_total").inc(1)
        reg.gauge("noisy", volatile=True).set(42)
        text = reg.render_prometheus()
        assert "stable_total 1" in text
        assert "noisy" not in text
        assert "noisy 42" in reg.render_prometheus(include_volatile=True)

    def test_render_deterministic_ordering(self):
        reg = MetricsRegistry()
        reg.counter("b_total").inc(2)
        reg.counter("a_total", label_names=("x",)).inc(1, labels=("z",))
        reg.counter("a_total", label_names=("x",)).inc(1, labels=("a",))
        text = reg.render_prometheus()
        assert text.index('a_total{x="a"}') < text.index('a_total{x="z"}')
        assert text.index("a_total") < text.index("b_total")
        assert text.endswith("\n")

    def test_label_values_escaped(self):
        """Backslashes, quotes and newlines in label values render in
        the escaped exposition form (unescaped they corrupt the line
        and every line after it)."""
        reg = MetricsRegistry()
        c = reg.counter("weird_total", "weird labels",
                        label_names=("path",))
        c.inc(1, labels=('C:\\tmp\\"x"\nboom',))
        text = reg.render_prometheus()
        assert 'path="C:\\\\tmp\\\\\\"x\\"\\nboom"' in text
        assert "\nboom" not in text  # no raw newline leaked

    def test_histogram_label_values_escaped(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "", buckets=(1.0,),
                          label_names=("node",))
        h.observe(0.5, labels=('a"b\\c',))
        samples = [name for name, _ in h.samples()]
        assert all('node="a\\"b\\\\c"' in name for name in samples)
        # Every rendered sample stays on one physical line.
        text = reg.render_prometheus()
        assert all(line.count('"') % 2 == 0 or "\\" in line
                   for line in text.splitlines())

    def test_help_text_escaped(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "first line\nsecond \\ line").inc(1)
        text = reg.render_prometheus()
        assert "# HELP x_total first line\\nsecond \\\\ line" in text
        # One HELP, one TYPE, one sample: nothing split across lines.
        assert len(text.strip().splitlines()) == 3

    def test_plain_labels_unchanged_by_escaping(self):
        """The escaping is a no-op for ordinary label values, so
        existing exports stay byte-identical."""
        reg = MetricsRegistry()
        reg.counter("pkts_total", "packets",
                    label_names=("stage",)).inc(3, labels=("parsing",))
        assert 'pkts_total{stage="parsing"} 3' in reg.render_prometheus()

    def test_null_recorder_is_inert(self):
        NULL_RECORDER.inc(5, labels=("x",))
        NULL_RECORDER.observe(1.0)
        assert NULL_RECORDER.counter("anything") is NULL_RECORDER
        assert NULL_RECORDER.histogram("x", "", (1,)) is NULL_RECORDER


# ---------------------------------------------------------------------------
# the filter funnel
# ---------------------------------------------------------------------------
class TestFunnel:
    @pytest.mark.parametrize("filter_str", _FILTERS)
    def test_funnel_invariant_over_corpus(self, traffic, filter_str):
        """Every filter in the corpus yields a monotone funnel."""
        stats = _run(traffic, filter_str=filter_str).stats
        layers = build_funnel(stats)
        check_funnel(layers)  # raises on violation
        assert [l.layer for l in layers] == [
            "nic_hardware", "packet_filter", "connection_filter",
            "session_filter"]
        # Layers chain: each layer's input is the previous's output.
        for prev, cur in zip(layers, layers[1:]):
            assert cur.packets_in == prev.packets_out

    def test_funnel_narrow_filter_drops(self, traffic):
        # With the NIC offload disabled, the software packet filter has
        # to do the dropping — the funnel must show it there.
        stats = _run(traffic, filter_str="tcp.port = 443",
                     hardware_filter=False).stats
        layers = {l.layer: l for l in build_funnel(stats)}
        assert layers["nic_hardware"].dropped_packets == 0
        assert layers["packet_filter"].dropped_packets > 0
        assert layers["packet_filter"].drop_fraction > 0

    def test_funnel_in_to_dict_and_describe(self, traffic):
        stats = _run(traffic).stats
        d = stats.to_dict()
        assert [row["layer"] for row in d["filter_funnel"]] == [
            "nic_hardware", "packet_filter", "connection_filter",
            "session_filter"]
        assert "filter funnel:" in stats.describe()

    def test_funnel_sequential_parallel_equal(self, traffic):
        """Funnel counters are identical across backends at 1/2/4
        workers (the determinism acceptance criterion)."""
        for cores in (1, 2, 4):
            seq = _run(traffic, cores=cores).stats
            par = _run(traffic, cores=cores, parallel=True).stats
            assert [l.to_dict() for l in build_funnel(seq)] == \
                [l.to_dict() for l in build_funnel(par)], \
                f"funnel diverged at {cores} workers"


# ---------------------------------------------------------------------------
# connection tracing
# ---------------------------------------------------------------------------
class TestTracer:
    def test_stable_hash_is_seed_independent(self):
        # CRC-32 of the packed canonical tuple: a fixed value, not
        # Python's randomized hash().
        key = (b"\x01\x02\x03\x04", 443, b"\x05\x06\x07\x08", 51000, 6)
        assert stable_sample_hash(key) == stable_sample_hash(key)
        assert 0 <= stable_sample_hash(key) < 2 ** 32

    def test_sample_fraction_bounds(self):
        all_events, no_events = [], []
        always = ConnectionTracer(1.0, all_events)
        never = ConnectionTracer(0.0, no_events)
        key = (b"\x01\x02\x03\x04", 1, b"\x05\x06\x07\x08", 2, 17)
        assert always.sampled(key)
        assert not never.sampled(key)
        with pytest.raises(ValueError):
            ConnectionTracer(1.5, [])

    def test_event_order_and_indices(self):
        events = [
            (2.0, "b", 7, "delivered", ""),
            (1.0, "a", 1, "created", ""),
            (1.0, "a", 2, "matched", "packet"),
        ]
        assert [e[1] for e in sort_trace_events(events)] == ["a", "a", "b"]
        dicts = trace_event_dicts(events)
        assert [d["i"] for d in dicts] == [0, 1, 0]
        assert "detail" not in dicts[0]
        assert dicts[1]["detail"] == "packet"

    def test_lifecycle_recorded(self, traffic):
        report = _run(traffic, trace_sample=1.0)
        events = trace_event_dicts(report.stats.trace_events)
        assert events, "full sampling must record events"
        names = {e["event"] for e in events}
        assert "created" in names and "matched" in names
        # Every connection's first event is its creation.
        firsts = [e for e in events if e["i"] == 0]
        assert all(e["event"] == "created" for e in firsts)

    def test_trace_identical_across_backends(self, traffic):
        for cores in (1, 2, 4):
            seq = _run(traffic, cores=cores, trace_sample=1.0)
            par = _run(traffic, cores=cores, parallel=True,
                       trace_sample=1.0)
            assert export.trace_lines(seq.stats) == \
                export.trace_lines(par.stats), \
                f"trace diverged at {cores} workers"

    def test_sampling_subsets_full_trace(self, traffic):
        full = _run(traffic, trace_sample=1.0)
        some = _run(traffic, trace_sample=0.25)
        full_lines = set(export.trace_lines(full.stats))
        some_lines = export.trace_lines(some.stats)
        assert set(some_lines) <= full_lines
        assert len(some_lines) < len(full_lines)


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------
class TestExport:
    def test_prometheus_identical_across_backends(self, traffic):
        for cores in (1, 2, 4):
            seq = _run(traffic, cores=cores, telemetry=True).stats
            par = _run(traffic, cores=cores, parallel=True,
                       telemetry=True).stats
            assert export.render_metrics(seq) == \
                export.render_metrics(par), \
                f"metrics diverged at {cores} workers"

    def test_funnel_metrics_match_stats(self, traffic):
        stats = _run(traffic).stats
        reg = export.build_registry(stats)
        samples = dict(reg.get("repro_funnel_packets_total").samples())
        for layer in build_funnel(stats):
            key = f'repro_funnel_packets_total{{layer="{layer.layer}"' \
                  f',edge="out"}}'
            assert samples[key] == layer.packets_out

    def test_stage_histograms_cover_invocations(self, traffic):
        """Histogram _count equals stage invocations — including the
        capture/packet-filter stages whose constant-cost observations
        the exporter synthesizes."""
        stats = _run(traffic, telemetry=True).stats
        assert stats.stage_cycle_hist is not None
        text = export.render_metrics(stats)
        inv = {s.value: n for s, n in stats.stage_invocations.items()}
        for stage in ("capture", "packet_filter", "conn_track"):
            if not inv[stage]:
                continue
            needle = f'repro_stage_cost_cycles_count{{stage="{stage}"}} ' \
                     f'{inv[stage]}'
            assert needle in text, f"{stage}: missing {needle!r}"

    def test_disabled_telemetry_omits_histograms(self, traffic):
        stats = _run(traffic).stats
        assert stats.stage_cycle_hist is None
        assert stats.reasm_hist is None
        assert "repro_stage_cost_cycles" not in \
            export.render_metrics(stats)
        # The funnel itself is always on.
        assert "repro_funnel_packets_total" in \
            export.render_metrics(stats)

    def test_backend_health_is_volatile(self, traffic):
        report = _run(traffic, parallel=True, telemetry=True)
        assert report.backend_health is not None
        assert len(report.backend_health["workers"]) == 4
        default = export.render_metrics(report.stats,
                                        report.backend_health)
        assert "repro_worker_queue_highwater" not in default
        verbose = export.render_metrics(report.stats,
                                        report.backend_health,
                                        include_volatile=True)
        assert "repro_worker_queue_highwater" in verbose
        assert "repro_feeder_block_seconds" in verbose

    def test_write_trace_ndjson(self, traffic, tmp_path):
        report = _run(traffic, trace_sample=1.0)
        path = tmp_path / "trace.ndjson"
        count = export.write_trace(path, report.stats)
        lines = path.read_text().splitlines()
        assert len(lines) == count > 0
        for line in lines:
            record = json.loads(line)
            assert {"ts", "conn", "i", "event"} <= set(record)


# ---------------------------------------------------------------------------
# monitor fixes
# ---------------------------------------------------------------------------
class TestMonitorFinalize:
    def test_short_run_still_sampled(self, traffic):
        """Regression: a run shorter than the monitor interval used to
        produce zero samples — the whole run fell in the dropped tail."""
        monitor = StatsMonitor(interval=10_000.0)
        _run(traffic, monitor=monitor)
        assert len(monitor.samples) == 1
        assert monitor.samples[-1].ingress_packets > 0

    def test_tail_interval_not_lost(self, traffic):
        monitor = StatsMonitor(interval=0.1)
        _run(traffic, monitor=monitor)
        total = sum(s.ingress_packets for s in monitor.samples)
        stats = _run(traffic).stats
        assert total == stats.ingress_packets

    def test_parallel_tail_matches_sequential(self, traffic):
        seq = StatsMonitor(interval=0.1)
        par = StatsMonitor(interval=0.1)
        _run(traffic, monitor=seq)
        _run(traffic, parallel=True, monitor=par)
        assert sum(s.ingress_packets for s in seq.samples) == \
            sum(s.ingress_packets for s in par.samples)

    def test_funnel_columns_in_samples(self, traffic):
        monitor = StatsMonitor(interval=0.1)
        _run(traffic, monitor=monitor)
        stats = _run(traffic).stats
        assert sum(s.pf_packets for s in monitor.samples) == \
            stats.pf_packets
        assert sum(s.sessf_packets for s in monitor.samples) == \
            stats.sessf_packets
        assert "funnel=" in monitor.samples[0].format()

    def test_finalize_idempotent(self, traffic):
        monitor = StatsMonitor(interval=0.1)
        report = _run(traffic, monitor=monitor)
        n = len(monitor.samples)
        monitor.finalize(report.stats.duration, None)  # same end time
        assert len(monitor.samples) == n


def _sample(**overrides):
    base = dict(timestamp=1.0, interval=1.0, ingress_packets=100,
                ingress_bytes=150_000, interval_gbps=0.0012,
                callbacks=3, live_connections=7, memory_bytes=4096,
                busy_fraction=0.5)
    base.update(overrides)
    return MonitorSample(**base)


class TestMonitorSampleEdges:
    def test_no_loss_under_capacity(self):
        assert _sample(busy_fraction=0.99).loss_fraction == 0.0
        assert _sample(busy_fraction=1.0).loss_fraction == 0.0

    def test_loss_over_capacity(self):
        assert _sample(busy_fraction=2.0).loss_fraction == \
            pytest.approx(0.5)
        assert _sample(busy_fraction=4.0).loss_fraction == \
            pytest.approx(0.75)

    def test_format_over_100_percent_busy(self):
        line = _sample(busy_fraction=2.5).format()
        assert "busy=250.0%" in line
        assert "loss=60.00%" in line
        assert "conns=7" in line

    def test_format_zero_packets(self):
        line = _sample(ingress_packets=0, ingress_bytes=0,
                       interval_gbps=0.0, busy_fraction=0.0).format()
        assert "pkts=0" in line and "loss=0" in line

    def test_zero_interval_sample_formats(self):
        # Degenerate but must not divide by zero in rendering paths.
        line = _sample(interval=0.0).format()
        assert "conns=" in line


class TestSustainedLoss:
    def _monitor_with(self, busy_fractions):
        monitor = StatsMonitor(interval=1.0)
        for i, busy in enumerate(busy_fractions):
            monitor.samples.append(
                _sample(timestamp=float(i), busy_fraction=busy))
        return monitor

    def test_single_lossy_sample_is_not_sustained(self):
        """Regression: one lossy interval used to trip the signal."""
        assert not self._monitor_with([5.0]).sustained_loss
        assert not self._monitor_with([5.0, 5.0]).sustained_loss

    def test_three_lossy_samples_sustained(self):
        assert self._monitor_with([1.5, 1.5, 1.5]).sustained_loss
        assert self._monitor_with([0.1, 1.5, 1.5, 1.5]).sustained_loss

    def test_recovery_clears_signal(self):
        assert not self._monitor_with([1.5, 1.5, 0.5]).sustained_loss
        assert not self._monitor_with([]).sustained_loss


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------
class TestCliTelemetry:
    def test_metrics_and_trace_flags(self, tmp_path, capsys):
        from repro.cli import main
        metrics = tmp_path / "metrics.prom"
        trace = tmp_path / "trace.ndjson"
        rc = main(["--filter", "tcp", "--datatype", "connection",
                   "--synthetic", "campus", "--duration", "0.2",
                   "--gbps", "0.05", "--print-limit", "0",
                   "--metrics-out", str(metrics),
                   "--trace-out", str(trace),
                   "--trace-sample", "1.0"])
        assert rc == 0
        text = metrics.read_text()
        assert "repro_funnel_packets_total" in text
        assert "repro_stage_cost_cycles_bucket" in text
        assert trace.read_text().count("\n") > 0
        out = capsys.readouterr().out
        assert "metrics written" in out and "trace events written" in out

    def test_invalid_trace_sample_rejected(self, tmp_path, capsys):
        from repro.cli import main
        rc = main(["--synthetic", "campus", "--duration", "0.1",
                   "--print-limit", "0",
                   "--trace-out", str(tmp_path / "t"),
                   "--trace-sample", "1.5"])
        assert rc == 2
        assert "trace_sample" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# multi-tenant export
# ---------------------------------------------------------------------------
class TestTenantExport:
    def _tenant_run(self, traffic, specs, **config_kwargs):
        from repro.tenancy import TenantRuntime
        config = RuntimeConfig(cores=2, **config_kwargs)
        runtime = TenantRuntime(config, specs)
        report = runtime.run(iter(traffic))
        return runtime, report

    def test_single_tenant_metrics_byte_identical(self, traffic):
        """A one-tenant TenantRuntime without the tenancy payload
        renders the exact bytes of the plain Runtime: the shared
        classifier and multiplexer must not perturb any family."""
        from repro.tenancy import TenantSpec
        plain = _run(traffic, filter_str="tcp.dst_port = 443",
                     cores=2).stats
        _, report = self._tenant_run(
            traffic,
            [TenantSpec("solo", "tcp.dst_port = 443", "connection")])
        assert export.render_metrics(report.stats) == \
            export.render_metrics(plain)

    def test_tenant_families_gated_on_payload(self, traffic):
        """repro_tenant_* families appear only when the tenancy payload
        is passed; the merged families stay byte-identical around it."""
        from repro.tenancy import TenantSpec
        specs = [TenantSpec("web", "tcp.dst_port = 443", "connection"),
                 TenantSpec("hog", "", "packet", quota_mbps=0.05)]
        runtime, report = self._tenant_run(traffic, specs)
        base = export.render_metrics(report.stats)
        assert "repro_tenant" not in base
        payload = {
            "epoch": runtime.table.epoch,
            "active": list(runtime.table.active),
            "tenants": runtime.aggregate_tenants(report),
            "shed": runtime.tenant_ledgers(report),
        }
        text = export.render_metrics(report.stats, tenancy=payload)
        assert 'repro_tenant_callbacks_total{tenant="web"}' in text
        assert 'repro_tenant_funnel_packets_total{tenant="hog"' in text
        assert 'repro_tenant_shed_packets_total{tenant="hog"' \
               ',layer="tenant_quota"}' in text
        assert "repro_tenancy_epoch 0" in text
        stripped = "\n".join(
            line for line in text.splitlines()
            if "repro_tenant" not in line and "repro_tenancy" not in line)
        assert stripped == base.rstrip("\n") or stripped + "\n" == base

    def test_tenant_export_identical_across_backends(self, traffic):
        from repro.tenancy import TenantSpec
        specs = [TenantSpec("web", "tcp.dst_port = 443", "connection"),
                 TenantSpec("dns", "udp", "packet")]
        texts = []
        for parallel in (False, True):
            runtime, report = self._tenant_run(traffic, specs,
                                               parallel=parallel)
            payload = {
                "epoch": runtime.table.epoch,
                "active": list(runtime.table.active),
                "tenants": runtime.aggregate_tenants(report),
                "shed": runtime.tenant_ledgers(report),
            }
            texts.append(export.render_metrics(report.stats,
                                               tenancy=payload))
        assert texts[0] == texts[1]
