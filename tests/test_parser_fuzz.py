"""Seeded mutation fuzzing of the application-layer parsers.

The resilience contract for parsers (docs/RESILIENCE.md): fed arbitrary
bytes, a parser may return ``NO_MATCH``/``UNSURE``/``ERROR`` or raise
:class:`~repro.errors.ProtocolError` — it must never leak a raw
``IndexError``, ``struct.error``, ``KeyError``, ``UnicodeDecodeError``
or similar. Corrupt traffic is routine at 100GbE; a parser that throws
on it takes the whole core down.

The corpus is every builder-produced *valid* message, and the mutations
are seeded (flip/truncate/duplicate/extend/zero), so a failure here is
a deterministic reproducer: rerun with the printed seed.
"""

import random

import pytest

from repro.errors import ProtocolError
from repro.protocols import (
    DnsParser,
    HttpParser,
    QuicParser,
    SshParser,
    TlsParser,
)
from repro.protocols.dns.build import build_dns_query, build_dns_response
from repro.protocols.quic.build import (
    build_quic_initial,
    build_quic_short,
    build_quic_version_negotiation,
)
from repro.protocols.tls.build import (
    build_application_data,
    build_certificate,
    build_client_hello,
    build_server_hello,
    build_server_hello_done,
)
from repro.stream.pdu import StreamSegment

CLIENT_RANDOM = bytes(range(32))
SERVER_RANDOM = bytes(range(32, 64))

#: (parser factory, [valid message bytes]) — one corpus per protocol.
CORPUS = [
    (TlsParser, [
        build_client_hello("fuzz.example.com", CLIENT_RANDOM),
        build_server_hello(SERVER_RANDOM),
        build_certificate(),
        build_server_hello_done(),
        build_application_data(b"x" * 64),
    ]),
    (HttpParser, [
        b"GET /video?id=1 HTTP/1.1\r\nHost: example.com\r\n"
        b"User-Agent: Fuzz/1.0\r\n\r\n",
        b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n"
        b"Content-Type: text/plain\r\n\r\nhello",
        b"POST /u HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nBODY",
    ]),
    (DnsParser, [
        build_dns_query("fuzz.example.com"),
        build_dns_response("fuzz.example.com"),
        build_dns_response("fuzz.example.com", rcode=3),
    ]),
    (QuicParser, [
        build_quic_initial(b"\x01" * 8, b"\x02" * 8),
        build_quic_short(b"\x01" * 8),
        build_quic_version_negotiation(b"\x01" * 8, b"\x02" * 8),
    ]),
    (SshParser, [
        b"SSH-2.0-OpenSSH_9.3\r\n",
        b"SSH-1.99-legacy\r\n",
    ]),
]

SEEDS = range(25)

#: Exceptions a parser is allowed to raise on malformed input. Anything
#: else (IndexError, struct.error, KeyError, ...) is the bug under test.
ALLOWED = (ProtocolError,)


def _mutate(data: bytes, rng: random.Random) -> bytes:
    """One seeded mutation: flip, truncate, duplicate, extend, or zero."""
    if not data:
        return bytes([rng.randrange(256)])
    choice = rng.randrange(5)
    out = bytearray(data)
    if choice == 0:  # flip 1-8 bytes
        for _ in range(rng.randrange(1, 9)):
            out[rng.randrange(len(out))] ^= rng.randrange(1, 256)
        return bytes(out)
    if choice == 1:  # truncate
        return bytes(out[:rng.randrange(len(out))])
    if choice == 2:  # duplicate a slice in place
        start = rng.randrange(len(out))
        end = min(len(out), start + rng.randrange(1, 32))
        return bytes(out[:end] + out[start:end] + out[end:])
    if choice == 3:  # extend with random garbage
        return bytes(out) + bytes(rng.randrange(256)
                                  for _ in range(rng.randrange(1, 64)))
    # zero a run (kills length fields)
    start = rng.randrange(len(out))
    for i in range(start, min(len(out), start + rng.randrange(1, 16))):
        out[i] = 0
    return bytes(out)


def _exercise(factory, payload: bytes, seed: int) -> None:
    """Drive one mutant through the probe→parse→drain lifecycle the
    pipeline uses, tolerating only the sanctioned outcomes."""
    segment = StreamSegment(payload, True, 0.0)
    parser = factory()
    try:
        result = parser.probe(segment)
    except ALLOWED:
        return
    if result.value == "no_match":
        return
    try:
        parser.parse(segment)
        # A mid-stream continuation (possibly from the other side) must
        # be survivable too.
        parser.parse(StreamSegment(payload[::-1], False, 0.1))
        parser.drain_sessions()
    except ALLOWED:
        pass


@pytest.mark.parametrize(
    "factory,messages",
    CORPUS, ids=[factory.__name__ for factory, _ in CORPUS])
def test_mutated_messages_never_leak_raw_exceptions(factory, messages):
    for index, message in enumerate(messages):
        for seed in SEEDS:
            rng = random.Random((factory.__name__, index, seed).__repr__())
            mutant = _mutate(message, rng)
            try:
                _exercise(factory, mutant, seed)
            except ALLOWED:
                pass
            except Exception as exc:  # pragma: no cover - the bug report
                pytest.fail(
                    f"{factory.__name__} leaked {type(exc).__name__} "
                    f"({exc}) on corpus[{index}] seed {seed}: "
                    f"{mutant[:48].hex()}...")


@pytest.mark.parametrize(
    "factory,messages",
    CORPUS, ids=[factory.__name__ for factory, _ in CORPUS])
def test_mutated_tail_after_valid_prefix(factory, messages):
    """An identified stream (valid first message) followed by corrupt
    continuation bytes: the established parser must degrade to ERROR or
    ProtocolError, never a raw exception."""
    for index, message in enumerate(messages):
        for seed in SEEDS:
            rng = random.Random(f"tail:{factory.__name__}:{index}:{seed}")
            parser = factory()
            try:
                parser.probe(StreamSegment(message, True, 0.0))
                parser.parse(StreamSegment(message, True, 0.0))
                parser.parse(StreamSegment(_mutate(message, rng),
                                           False, 0.1))
                parser.drain_sessions()
            except ALLOWED:
                pass
            except Exception as exc:  # pragma: no cover - the bug report
                pytest.fail(
                    f"{factory.__name__} leaked {type(exc).__name__} "
                    f"({exc}) on tail fuzz corpus[{index}] seed {seed}")


def test_empty_and_tiny_inputs():
    """Degenerate segments: empty, single byte, all-zero, all-0xff."""
    probes = [b"", b"\x00", b"\xff", b"\x00" * 64, b"\xff" * 64]
    for factory, _ in CORPUS:
        for payload in probes:
            _exercise(factory, payload, seed=-1)
