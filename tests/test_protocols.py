"""Tests for application-layer parsers: TLS, HTTP, SSH, DNS."""

import os
import struct

import pytest

from repro.protocols import (
    DnsParser,
    HttpParser,
    ParseResult,
    ProbeResult,
    SshParser,
    TlsParser,
    default_parser_registry,
)
from repro.protocols.dns.build import build_dns_query, build_dns_response
from repro.protocols.dns.parser import parse_name
from repro.protocols.tls.build import (
    build_application_data,
    build_certificate,
    build_client_hello,
    build_server_hello,
    build_server_hello_done,
)
from repro.protocols.tls.ciphers import cipher_name, version_name
from repro.stream.pdu import StreamSegment


def seg(payload, from_orig=True, ts=0.0):
    return StreamSegment(payload, from_orig, ts)


CLIENT_RANDOM = bytes(range(32))
SERVER_RANDOM = bytes(range(32, 64))


class TestTlsParser:
    def test_probe_client_hello(self):
        hello = build_client_hello("example.com", CLIENT_RANDOM)
        assert TlsParser().probe(seg(hello)) is ProbeResult.MATCH

    def test_probe_http_no_match(self):
        assert TlsParser().probe(seg(b"GET / HTTP/1.1\r\n")) is \
            ProbeResult.NO_MATCH

    def test_probe_short_unsure(self):
        assert TlsParser().probe(seg(b"\x16\x03")) is ProbeResult.UNSURE

    def test_full_handshake(self):
        parser = TlsParser()
        hello = build_client_hello(
            "video.netflix.com", CLIENT_RANDOM,
            cipher_suites=[0x1301, 0xC02F],
            supported_versions=[0x0304, 0x0303],
            alpn=["h2", "http/1.1"],
        )
        assert parser.parse(seg(hello, from_orig=True, ts=1.0)) is \
            ParseResult.CONTINUE
        shello = build_server_hello(SERVER_RANDOM, cipher_suite=0x1301,
                                    selected_version=0x0304)
        assert parser.parse(seg(shello, from_orig=False, ts=1.1)) is \
            ParseResult.DONE
        sessions = parser.drain_sessions()
        assert len(sessions) == 1
        data = sessions[0].data
        assert data.sni() == "video.netflix.com"
        assert data.cipher() == "TLS_AES_128_GCM_SHA256"
        assert data.version() == "TLS 1.3"
        assert data.client_version() == "TLS 1.2"
        assert data.client_random == CLIENT_RANDOM
        assert data.server_random == SERVER_RANDOM
        assert data.offered_ciphers == [0x1301, 0xC02F]
        assert data.alpn_protocols == ["h2", "http/1.1"]

    def test_tls12_version_from_server_hello(self):
        parser = TlsParser()
        parser.parse(seg(build_client_hello("x.com", CLIENT_RANDOM)))
        # TLS 1.2 sessions finish at the end of the server's plaintext
        # flight, so the ServerHelloDone is required.
        parser.parse(seg(build_server_hello(SERVER_RANDOM,
                                            cipher_suite=0xC02F)
                         + build_server_hello_done(),
                         from_orig=False))
        data = parser.drain_sessions()[0].data
        assert data.version() == "TLS 1.2"
        assert data.cipher() == "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256"

    def test_no_sni(self):
        parser = TlsParser()
        parser.parse(seg(build_client_hello(None, CLIENT_RANDOM)))
        parser.parse(seg(build_server_hello(SERVER_RANDOM)),)
        # server hello on wrong direction:
        parser.parse(seg(build_server_hello(SERVER_RANDOM), from_orig=False))
        data = parser.handshake_data
        assert data.sni() is None

    def test_record_split_across_segments(self):
        parser = TlsParser()
        hello = build_client_hello("split.example", CLIENT_RANDOM)
        mid = len(hello) // 2
        assert parser.parse(seg(hello[:mid])) is ParseResult.CONTINUE
        parser.parse(seg(hello[mid:]))
        parser.parse(seg(build_server_hello(SERVER_RANDOM),
                         from_orig=False))
        assert parser.handshake_data.sni() == "split.example"

    def test_multiple_records_one_segment(self):
        parser = TlsParser()
        server_flight = (
            build_server_hello(SERVER_RANDOM)
            + build_certificate()
            + build_server_hello_done()
        )
        parser.parse(seg(build_client_hello("a.com", CLIENT_RANDOM)))
        assert parser.parse(seg(server_flight, from_orig=False)) is \
            ParseResult.DONE
        data = parser.drain_sessions()[0].data
        assert data.complete

    def test_garbage_is_error(self):
        parser = TlsParser()
        assert parser.parse(seg(b"\xde\xad\xbe\xef" * 10)) is \
            ParseResult.ERROR

    def test_application_data_ignored(self):
        parser = TlsParser()
        parser.parse(seg(build_client_hello("a.com", CLIENT_RANDOM)))
        result = parser.parse(seg(build_application_data(b"x" * 100),
                                  from_orig=False))
        assert result is ParseResult.CONTINUE

    def test_match_state_is_track(self):
        assert TlsParser().session_match_state() == "track"
        assert TlsParser().session_nomatch_state() == "delete"

    def test_cipher_and_version_name_fallbacks(self):
        assert cipher_name(0xFFFF) == "UNKNOWN_0xffff"
        assert version_name(0x9999) == "UNKNOWN_0x9999"

    def test_bad_random_length_rejected_by_builder(self):
        with pytest.raises(ValueError):
            build_client_hello("x", b"short")


class TestHttpParser:
    def test_probe(self):
        parser = HttpParser()
        assert parser.probe(seg(b"GET /index.html HTTP/1.1\r\n")) is \
            ProbeResult.MATCH
        assert parser.probe(seg(b"HTTP/1.1 200 OK\r\n", from_orig=False)) is \
            ProbeResult.MATCH
        assert parser.probe(seg(b"GE")) is ProbeResult.UNSURE
        assert parser.probe(seg(b"\x16\x03\x01")) is ProbeResult.NO_MATCH

    def test_transaction(self):
        parser = HttpParser()
        request = (b"GET /video?id=1 HTTP/1.1\r\n"
                   b"Host: example.com\r\n"
                   b"User-Agent: Firefox/117.0\r\n\r\n")
        response = (b"HTTP/1.1 200 OK\r\n"
                    b"Content-Length: 5\r\n"
                    b"Content-Type: text/plain\r\n\r\nhello")
        assert parser.parse(seg(request, ts=1.0)) is ParseResult.CONTINUE
        assert parser.parse(seg(response, from_orig=False, ts=1.2)) is \
            ParseResult.DONE
        txn = parser.drain_sessions()[0].data
        assert txn.method() == "GET"
        assert txn.uri() == "/video?id=1"
        assert txn.host() == "example.com"
        assert txn.user_agent() == "Firefox/117.0"
        assert txn.status_code() == 200
        assert txn.content_length() == 5
        assert txn.version() == "1.1"

    def test_pipelined_requests(self):
        parser = HttpParser()
        parser.parse(seg(b"GET /a HTTP/1.1\r\nHost: h\r\n\r\n"
                         b"GET /b HTTP/1.1\r\nHost: h\r\n\r\n"))
        parser.parse(seg(b"HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n"
                         b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n",
                         from_orig=False))
        sessions = parser.drain_sessions()
        assert [s.data.uri() for s in sessions] == ["/a", "/b"]
        assert [s.data.status_code() for s in sessions] == [200, 404]

    def test_request_body_skipped(self):
        parser = HttpParser()
        parser.parse(seg(b"POST /u HTTP/1.1\r\nHost: h\r\n"
                         b"Content-Length: 4\r\n\r\nBODY"
                         b"GET /after HTTP/1.1\r\nHost: h\r\n\r\n"))
        parser.parse(seg(b"HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n",
                         from_orig=False))
        sessions = parser.drain_sessions()
        assert sessions[0].data.method() == "POST"

    def test_body_split_across_segments(self):
        parser = HttpParser()
        parser.parse(seg(b"POST /u HTTP/1.1\r\nContent-Length: 10\r\n\r\n12345"))
        parser.parse(seg(b"67890GET /next HTTP/1.1\r\n\r\n"))
        parser.parse(seg(b"HTTP/1.1 201 Created\r\nContent-Length: 0\r\n\r\n",
                         from_orig=False))
        assert parser.drain_sessions()[0].data.status_code() == 201

    def test_huge_head_is_error(self):
        parser = HttpParser()
        assert parser.parse(seg(b"GET /" + b"a" * 70000)) is \
            ParseResult.ERROR

    def test_response_without_request(self):
        parser = HttpParser()
        parser.parse(seg(b"HTTP/1.1 502 Bad Gateway\r\n\r\n",
                         from_orig=False))
        txn = parser.drain_sessions()[0].data
        assert txn.status_code() == 502
        assert txn.method() is None

    def test_keeps_parsing_after_match(self):
        assert HttpParser().session_match_state() == "parse"
        assert HttpParser().session_nomatch_state() == "parse"


class TestSshParser:
    def test_probe(self):
        assert SshParser().probe(seg(b"SSH-2.0-OpenSSH_8.9\r\n")) is \
            ProbeResult.MATCH
        assert SshParser().probe(seg(b"SS")) is ProbeResult.UNSURE
        assert SshParser().probe(seg(b"GET /")) is ProbeResult.NO_MATCH

    def test_banner_exchange(self):
        parser = SshParser()
        assert parser.parse(seg(b"SSH-2.0-OpenSSH_8.9p1 Ubuntu\r\n")) is \
            ParseResult.CONTINUE
        assert parser.parse(seg(b"SSH-2.0-dropbear_2022.83\r\n",
                                from_orig=False)) is ParseResult.DONE
        data = parser.drain_sessions()[0].data
        assert data.client_version() == "2.0"
        assert data.client_software() == "OpenSSH_8.9p1"
        assert data.server_software() == "dropbear_2022.83"

    def test_banner_split(self):
        parser = SshParser()
        parser.parse(seg(b"SSH-2.0-Open"))
        parser.parse(seg(b"SSH_9.0\n"))
        parser.parse(seg(b"SSH-2.0-srv\r\n", from_orig=False))
        assert parser.drain_sessions()[0].data.client_software() == \
            "OpenSSH_9.0"

    def test_oversized_banner_error(self):
        parser = SshParser()
        assert parser.parse(seg(b"SSH-" + b"x" * 300)) is ParseResult.ERROR

    def test_v1_banner(self):
        parser = SshParser()
        parser.parse(seg(b"SSH-1.99-Cisco-1.25\r\n"))
        parser.parse(seg(b"SSH-2.0-x\r\n", from_orig=False))
        assert parser.drain_sessions()[0].data.client_version() == "1.99"


class TestDnsParser:
    def test_probe_query(self):
        query = build_dns_query("example.com", "A")
        assert DnsParser().probe(seg(query)) is ProbeResult.MATCH

    def test_probe_garbage(self):
        bad = b"\x12\x34\x01\x00\x00\x99" + b"\x00" * 20
        assert DnsParser().probe(seg(bad)) is ProbeResult.NO_MATCH

    def test_query_response_pair(self):
        parser = DnsParser()
        assert parser.parse(seg(build_dns_query("www.example.com", "AAAA",
                                                txn_id=7), ts=1.0)) is \
            ParseResult.CONTINUE
        response = build_dns_response("www.example.com", "2606:2800::1",
                                      qtype="AAAA", txn_id=7)
        assert parser.parse(seg(response, from_orig=False, ts=1.05)) is \
            ParseResult.DONE
        txn = parser.drain_sessions()[0].data
        assert txn.query_name() == "www.example.com"
        assert txn.query_type() == "AAAA"
        assert txn.response_code() == 0
        assert txn.rcode_name() == "NOERROR"
        assert txn.answer_count == 1

    def test_nxdomain(self):
        parser = DnsParser()
        parser.parse(seg(build_dns_query("nope.invalid", txn_id=9)))
        parser.parse(seg(build_dns_response("nope.invalid", txn_id=9,
                                            rcode=3), from_orig=False))
        txn = parser.drain_sessions()[0].data
        assert txn.rcode_name() == "NXDOMAIN"
        assert txn.answer_count == 0

    def test_response_without_query(self):
        parser = DnsParser()
        parser.parse(seg(build_dns_response("orphan.com", txn_id=1),
                         from_orig=False))
        txn = parser.drain_sessions()[0].data
        assert txn.query_name() == "orphan.com"

    def test_name_compression(self):
        response = build_dns_response("a.b.example.org", txn_id=2)
        name, _ = parse_name(response, 12)
        assert name == "a.b.example.org"

    def test_compression_loop_rejected(self):
        # A pointer that points at itself.
        message = b"\x00" * 12 + b"\xc0\x0c"
        with pytest.raises(ValueError):
            parse_name(message, 12)

    def test_tcp_length_prefix(self):
        query = build_dns_query("t.example", txn_id=3)
        framed = struct.pack("!H", len(query)) + query
        parser = DnsParser()
        parser.parse(seg(framed))
        response = build_dns_response("t.example", txn_id=3)
        parser.parse(seg(struct.pack("!H", len(response)) + response,
                         from_orig=False))
        assert parser.drain_sessions()[0].data.query_name() == "t.example"


class TestRegistry:
    def test_default_registry(self):
        registry = default_parser_registry()
        assert registry.protocols() == ["dns", "http", "quic", "ssh", "tls"]
        assert isinstance(registry.create("tls"), TlsParser)

    def test_create_set_fresh_instances(self):
        registry = default_parser_registry()
        set1 = registry.create_set(["tls", "http", "tls"])
        assert len(set1) == 2
        set2 = registry.create_set(["tls"])
        assert set1[1] is not set2[0]

    def test_unknown_protocol(self):
        from repro.errors import SubscriptionError
        with pytest.raises(SubscriptionError):
            default_parser_registry().create("mqtt")
