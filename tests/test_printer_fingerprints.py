"""Tests for the filter pretty-printer (round-trip property) and the
JA3 fingerprint counter app."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Runtime, RuntimeConfig
from repro.analysis import Ja3Counter
from repro.filter import (
    compile_filter,
    expand_patterns,
    format_filter,
    format_predicate,
    parse_filter,
)
from repro.traffic import FlowSpec, tls_flow

ROUND_TRIP_FILTERS = [
    "",
    "ipv4",
    "tcp.port = 443",
    "tcp.port in 80..100",
    "ipv4.addr in 10.0.0.0/8",
    "ipv6.addr in 2001:db8::/32",
    "ipv4.src_addr = 1.2.3.4",
    "tls.sni matches '.*\\.com$'",
    "tls.sni = 'it\\'s.example'",
    "ipv4 and (tls or ssh)",
    "(ipv4 and tcp.port >= 100 and tls.sni matches 'netflix') or http",
    "http.user_agent matches 'Firefox' or dns.response_code = 3",
    "icmp.type = 8 and ipv4.ttl > 64",
]


class TestPrinterRoundTrip:
    @pytest.mark.parametrize("text", ROUND_TRIP_FILTERS)
    def test_round_trip_preserves_semantics(self, text):
        """parse(format(parse(x))) expands to identical patterns."""
        original = parse_filter(text)
        printed = format_filter(original)
        reparsed = parse_filter(printed)
        def canon(expr):
            return sorted(
                tuple(str(p) for p in pattern)
                for pattern in expand_patterns(expr)
            )
        assert canon(original) == canon(reparsed)

    def test_match_all_prints_empty(self):
        assert format_filter(parse_filter("")) == ""

    def test_predicate_formats(self):
        expr = parse_filter("tcp.port in 80..100")
        assert format_predicate(expr.predicate) == "tcp.port in 80..100"

    def test_or_of_ands_parenthesized(self):
        text = format_filter(parse_filter("(ipv4 and tcp) or udp"))
        assert parse_filter(text)  # stays parseable
        assert "and" in text and "or" in text

    def test_printed_filter_compiles(self):
        for text in ROUND_TRIP_FILTERS:
            compile_filter(format_filter(parse_filter(text)))


class TestJa3Counter:
    def _run(self, flows):
        counter = Ja3Counter()
        runtime = Runtime(RuntimeConfig(cores=2), filter_str="tls",
                          datatype="tls_handshake", callback=counter)
        packets = sorted((m for f in flows for m in f),
                         key=lambda m: m.timestamp)
        runtime.run(iter(packets))
        return counter

    def test_counts_and_tail(self):
        rng = random.Random(3)
        flows = []
        # A fleet of identical mainstream clients...
        for i in range(6):
            flows.append(tls_flow(
                FlowSpec(f"10.0.0.{i + 1}", "1.1.1.1", 1000 + i, 443),
                f"site{i}.example.com",
                cipher_suite=0x1301, start_ts=0.02 * i, rng=rng))
        # ...and one odd client offering a lone legacy suite.
        odd = tls_flow(FlowSpec("10.0.9.9", "1.1.1.1", 2000, 443),
                       "odd.example.org", cipher_suite=0x0005,
                       start_ts=1.0, rng=rng)
        counter = self._run(flows + [odd])
        assert counter.handshakes == 7
        assert counter.distinct >= 1
        top_fp, top_count = counter.top(1)[0]
        assert top_count >= 6

    def test_sni_examples_collected(self):
        counter = self._run([
            tls_flow(FlowSpec("10.0.0.1", "1.1.1.1", 1000, 443),
                     "example-a.com"),
        ])
        fingerprint = counter.top(1)[0][0]
        assert "example-a.com" in counter.sni_examples[fingerprint]

    def test_summary(self):
        counter = self._run([
            tls_flow(FlowSpec("10.0.0.1", "1.1.1.1", 1000, 443), "s.com"),
        ])
        assert "distinct JA3" in counter.summary()
