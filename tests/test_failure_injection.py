"""Failure injection: malformed, truncated, and adversarial input must
never crash the framework (the paper's Security design goal).

Retina's answer to hostile traffic is Rust's memory safety; ours is
that every parsing path converts malformed bytes into a clean
non-match / ERROR result instead of an exception. These tests drive
random and deliberately corrupted bytes through every layer: header
parsing, the compiled and interpreted filters, every application
parser, the reassembler, and the full runtime.
"""

import random
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Runtime, RuntimeConfig
from repro.filter import compile_filter
from repro.packet import Mbuf, build_tcp_packet, build_udp_packet, \
    parse_stack
from repro.protocols import (
    DnsParser,
    HttpParser,
    ParseResult,
    ProbeResult,
    QuicParser,
    SshParser,
    TlsParser,
)
from repro.stream import BufferedReassembler, L4Pdu, LazyReassembler
from repro.stream.pdu import StreamSegment

ALL_PARSERS = [TlsParser, HttpParser, SshParser, DnsParser, QuicParser]

FILTERS = [
    "",
    "tcp.port = 443 and tls.sni ~ 'x'",
    "ipv4.addr in 10.0.0.0/8 or http",
    "udp and dns.query_name ~ 'a'",
]


@settings(max_examples=150, deadline=None)
@given(frame=st.binary(min_size=0, max_size=200))
def test_parse_stack_never_raises(frame):
    stack = parse_stack(Mbuf(frame))
    stack.l4_payload()  # must not raise either


@settings(max_examples=100, deadline=None)
@given(frame=st.binary(min_size=0, max_size=200),
       data=st.data())
def test_filters_never_raise_on_garbage(frame, data):
    filter_str = data.draw(st.sampled_from(FILTERS))
    mode = data.draw(st.sampled_from(["codegen", "interp"]))
    compiled = _cached_filter(filter_str, mode)
    compiled.packet_filter(Mbuf(frame))  # result irrelevant; no raise


_FILTER_CACHE = {}


def _cached_filter(filter_str, mode):
    key = (filter_str, mode)
    if key not in _FILTER_CACHE:
        _FILTER_CACHE[key] = compile_filter(filter_str, mode=mode)
    return _FILTER_CACHE[key]


@settings(max_examples=100, deadline=None)
@given(
    payloads=st.lists(st.binary(min_size=0, max_size=300), min_size=1,
                      max_size=6),
    directions=st.lists(st.booleans(), min_size=6, max_size=6),
)
@pytest.mark.parametrize("parser_cls", ALL_PARSERS)
def test_parsers_never_raise_on_garbage(parser_cls, payloads, directions):
    """Random byte sequences through probe+parse: clean results only."""
    parser = parser_cls()
    for payload, from_orig in zip(payloads, directions):
        segment = StreamSegment(payload, from_orig, 0.0)
        outcome = parser.probe(segment)
        assert outcome in (ProbeResult.MATCH, ProbeResult.UNSURE,
                           ProbeResult.NO_MATCH)
        result = parser.parse(segment)
        assert result in (ParseResult.CONTINUE, ParseResult.DONE,
                          ParseResult.ERROR)
        if result is ParseResult.ERROR:
            break
    parser.drain_sessions()


def _corrupt(frame: bytes, rng: random.Random) -> bytes:
    """Flip bytes / truncate / extend a legitimate frame."""
    data = bytearray(frame)
    action = rng.randrange(4)
    if action == 0 and data:
        for _ in range(rng.randrange(1, 8)):
            data[rng.randrange(len(data))] ^= rng.randrange(1, 256)
    elif action == 1 and len(data) > 2:
        del data[rng.randrange(1, len(data)):]
    elif action == 2:
        data.extend(rng.randbytes(rng.randrange(1, 64)))
    else:
        rng.shuffle(data)
    return bytes(data)


@pytest.mark.parametrize("datatype,filter_str", [
    ("packet", "ipv4"),
    ("connection", "tcp"),
    ("tls_handshake", "tls"),
    ("http_transaction", "http"),
])
def test_runtime_survives_corrupted_traffic(datatype, filter_str):
    """A realistic trace with heavy random corruption: the runtime
    must process every frame without raising."""
    from repro.traffic import CampusTrafficGenerator
    rng = random.Random(1337)
    traffic = CampusTrafficGenerator(seed=9).packets(duration=0.3,
                                                     gbps=0.1)
    corrupted = []
    for mbuf in traffic:
        if rng.random() < 0.3:
            corrupted.append(Mbuf(_corrupt(mbuf.data, rng),
                                  timestamp=mbuf.timestamp))
        else:
            corrupted.append(mbuf)
    runtime = Runtime(RuntimeConfig(cores=4), filter_str=filter_str,
                      datatype=datatype, callback=lambda obj: None)
    report = runtime.run(iter(corrupted))
    assert report.stats.ingress_packets == len(corrupted)


@settings(max_examples=80, deadline=None)
@given(
    seqs=st.lists(st.integers(0, 2 ** 32 - 1), min_size=1, max_size=12),
    payload_lens=st.lists(st.integers(0, 50), min_size=12, max_size=12),
    flags=st.lists(st.integers(0, 255), min_size=12, max_size=12),
)
@pytest.mark.parametrize("cls", [LazyReassembler, BufferedReassembler])
def test_reassemblers_never_raise_on_adversarial_sequences(
        cls, seqs, payload_lens, flags):
    """Arbitrary (seq, len, flags) streams — overlaps, wraps, floods —
    must be absorbed without exceptions (Dharmapurikar & Paxson's
    adversarial reassembly setting)."""
    reassembler = cls()
    for seq, length, flag in zip(seqs, payload_lens, flags):
        pdu = L4Pdu(
            mbuf=Mbuf(b"\x00" * (54 + length)),
            payload=b"A" * length,
            seq=seq,
            flags=flag,
            from_orig=True,
            timestamp=0.0,
        )
        for segment in reassembler.push(pdu):
            assert isinstance(segment.payload, bytes)
    assert reassembler.memory_bytes >= 0


def test_truncated_tls_mid_handshake():
    """A flow that dies mid-ClientHello: no delivery, no crash, state
    reclaimed by the establish timeout."""
    from repro.protocols.tls.build import build_client_hello
    from repro.traffic.flows import FlowSpec, TcpFlow
    flow = TcpFlow(FlowSpec("10.0.0.1", "1.1.1.1", 1000, 443))
    flow.handshake()
    hello = build_client_hello("cut.example", bytes(32))
    flow.send(True, hello[:len(hello) // 3])  # truncated
    got = []
    runtime = Runtime(RuntimeConfig(cores=1), filter_str="tls",
                      datatype="tls_handshake", callback=got.append)
    runtime.run(iter(flow.build()))
    assert got == []


def test_tcp_header_claims_beyond_frame():
    """A TCP data offset pointing past the frame end parses as no-TCP
    rather than reading out of bounds."""
    frame = bytearray(build_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2))
    frame[14 + 20 + 12] = 0xF0  # data offset = 60 bytes
    frame = bytes(frame[:14 + 20 + 22])
    stack = parse_stack(Mbuf(frame))
    assert stack.tcp is None


def test_ipv4_total_length_lies():
    """An IP total_length larger than the frame must clamp payload."""
    frame = bytearray(build_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2,
                                       payload=b"hi"))
    struct.pack_into("!H", frame, 14 + 2, 60000)
    stack = parse_stack(Mbuf(bytes(frame)))
    assert stack.l4_payload() == b"hi"


def test_udp_length_field_lies():
    frame = bytearray(build_udp_packet("1.1.1.1", "2.2.2.2", 1, 2,
                                       payload=b"xy"))
    struct.pack_into("!H", frame, 14 + 20 + 4, 9)  # bogus length
    stack = parse_stack(Mbuf(bytes(frame)))
    stack.l4_payload()  # must not raise
