"""Tests for the future-work features: callback executors and the
P4-capable pre-filter profile."""

import pytest

from repro import Runtime, RuntimeConfig, Stage, Subscription
from repro.core.executor import InlineExecutor, QueuedExecutor
from repro.errors import ConfigError
from repro.filter import compile_filter, expand_patterns, parse_filter
from repro.filter.hardware import (
    connectx5_capabilities,
    generate_hardware_filter,
    p4_capabilities,
)
from repro.packet import Mbuf, build_tcp_packet, parse_stack
from repro.traffic import FlowSpec, tls_flow


class TestInlineExecutor:
    def test_charges_callback_cycles(self):
        got = []
        executor = InlineExecutor(got.append, 5000.0)
        assert executor.submit("x") == 5000.0
        assert got == ["x"]
        assert executor.stats.delivered == 1


class TestQueuedExecutor:
    def test_charges_enqueue_only_on_rx(self):
        executor = QueuedExecutor(None, 100_000.0, workers=2,
                                  enqueue_cycles=300.0)
        assert executor.submit("x") == 300.0
        assert executor.stats.worker_cycles == 100_000.0

    def test_finalize_counts_overload(self):
        executor = QueuedExecutor(None, 1_000_000.0, workers=1)
        for _ in range(100):
            executor.submit("x")
        # 100M cycles of work; 1 worker x 3GHz x 0.01s = 30M capacity.
        executor.finalize(duration=0.01, cpu_hz=3e9)
        assert executor.stats.dropped == pytest.approx(70, abs=2)

    def test_no_drop_when_capacity_sufficient(self):
        executor = QueuedExecutor(None, 1000.0, workers=4)
        for _ in range(10):
            executor.submit("x")
        executor.finalize(duration=1.0, cpu_hz=3e9)
        assert executor.stats.dropped == 0

    def test_rate_ceiling(self):
        executor = QueuedExecutor(None, 100_000.0, workers=4)
        assert executor.max_zero_loss_callbacks_per_second(3e9) == \
            pytest.approx(120_000)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            QueuedExecutor(None, 0.0, workers=0)
        with pytest.raises(ConfigError):
            RuntimeConfig(callback_workers=0)
        with pytest.raises(ConfigError):
            RuntimeConfig(callback_execution="threads")

    def test_runtime_integration(self):
        got = []
        runtime = Runtime(
            RuntimeConfig(cores=2, callback_execution="queued",
                          callback_cycles=50_000.0, callback_workers=2),
            filter_str="tls",
            datatype="tls_handshake",
            callback=got.append,
        )
        packets = tls_flow(FlowSpec("10.0.0.1", "1.1.1.1", 1000, 443),
                           "q.example.com")
        stats = runtime.run(iter(packets)).stats
        assert [h.sni() for h in got] == ["q.example.com"]
        # RX side charged only the enqueue fee.
        assert stats.stage_cycles[Stage.CALLBACK] == pytest.approx(250.0)
        assert runtime.executor.stats.worker_cycles == \
            pytest.approx(50_000.0)


class TestP4Capabilities:
    def test_offloads_ranges_and_ordered_ops(self):
        patterns = expand_patterns(parse_filter(
            "tcp.port in 8000..9999 and ipv4.ttl > 32"))
        p4 = generate_hardware_filter(patterns, p4_capabilities())
        cx5 = generate_hardware_filter(patterns, connectx5_capabilities())
        p4_desc = " ".join(p4.describe())
        cx5_desc = " ".join(cx5.describe())
        assert "8000..9999" in p4_desc and "ttl > 32" in p4_desc
        assert "8000..9999" not in cx5_desc and "ttl" not in cx5_desc

    def test_no_regex_offload(self):
        # Session-layer regexes can never be offloaded; the rule set
        # stays at the protocol chain.
        f = compile_filter("tls.sni ~ 'x' and tcp.port > 1000",
                           nic=p4_capabilities())
        descriptions = " ".join(f.hardware.describe())
        assert "tcp.port > 1000" in descriptions
        assert "sni" not in descriptions

    def test_rules_still_sound(self):
        """P4 rules remain at least as broad as the software filter."""
        f = compile_filter("tcp.port in 8000..8999 and ipv4.ttl > 32",
                           nic=p4_capabilities())
        match = Mbuf(build_tcp_packet("1.1.1.1", "2.2.2.2", 100, 8443,
                                      ttl=64))
        miss_port = Mbuf(build_tcp_packet("1.1.1.1", "2.2.2.2", 100, 80,
                                          ttl=64))
        miss_ttl = Mbuf(build_tcp_packet("1.1.1.1", "2.2.2.2", 100, 8443,
                                         ttl=16))
        assert f.hardware.admits(parse_stack(match))
        assert not f.hardware.admits(parse_stack(miss_port))
        assert not f.hardware.admits(parse_stack(miss_ttl))
        assert f.packet_filter(match).matched
