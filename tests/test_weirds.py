"""Tests for protocol-anomaly ("weird") tracking."""

import pytest

from repro import Runtime, RuntimeConfig
from repro.conntrack import Connection, FiveTuple
from repro.packet import TcpFlags
from repro.traffic import FlowSpec, TcpFlow


def make_conn():
    import ipaddress
    tup = FiveTuple(ipaddress.ip_address("10.0.0.1").packed,
                    ipaddress.ip_address("10.0.0.2").packed,
                    1234, 443, 6)
    return Connection(tup, now=0.0)


class TestWeirdDetection:
    def test_syn_and_fin(self):
        conn = make_conn()
        conn.record_packet(True, 60, 0, 0.0,
                           TcpFlags.SYN | TcpFlags.FIN, seq=100)
        assert conn.weirds == {"syn_and_fin": 1}

    def test_data_on_syn(self):
        conn = make_conn()
        conn.record_packet(True, 120, 60, 0.0, TcpFlags.SYN, seq=100)
        assert "data_on_syn" in conn.weirds

    def test_fin_without_handshake(self):
        conn = make_conn()
        conn.record_packet(True, 60, 0, 0.0,
                           TcpFlags.FIN | TcpFlags.ACK, seq=100)
        assert "fin_without_handshake" in conn.weirds

    def test_data_before_established(self):
        conn = make_conn()
        conn.record_packet(True, 500, 440, 0.0,
                           TcpFlags.PSH | TcpFlags.ACK, seq=100)
        assert "data_before_established" in conn.weirds

    def test_data_after_close(self):
        conn = make_conn()
        conn.record_packet(True, 60, 0, 0.0, TcpFlags.RST, seq=100)
        conn.record_packet(True, 500, 440, 0.1,
                           TcpFlags.PSH | TcpFlags.ACK, seq=101)
        assert "data_after_close" in conn.weirds

    def test_large_seq_jump(self):
        conn = make_conn()
        conn.record_packet(True, 60, 0, 0.0, TcpFlags.SYN, seq=100)
        conn.record_packet(False, 60, 0, 0.1,
                           TcpFlags.SYN | TcpFlags.ACK, seq=5000)
        conn.record_packet(True, 500, 440, 0.2,
                           TcpFlags.PSH | TcpFlags.ACK, seq=101)
        conn.record_packet(True, 500, 440, 0.3,
                           TcpFlags.PSH | TcpFlags.ACK,
                           seq=101 + 440 + 50_000_000)
        assert "large_seq_jump" in conn.weirds

    def test_clean_handshake_no_weirds(self):
        conn = make_conn()
        conn.record_packet(True, 60, 0, 0.0, TcpFlags.SYN, seq=100)
        conn.record_packet(False, 60, 0, 0.1,
                           TcpFlags.SYN | TcpFlags.ACK, seq=900)
        conn.record_packet(True, 60, 0, 0.2, TcpFlags.ACK, seq=101)
        conn.record_packet(True, 500, 440, 0.3,
                           TcpFlags.PSH | TcpFlags.ACK, seq=101)
        assert conn.weirds == {}

    def test_weirds_reach_connection_record(self):
        got = []
        runtime = Runtime(RuntimeConfig(cores=1), filter_str="tcp",
                          datatype="connection", callback=got.append)
        # SYN carrying data: a classic scanner/evasion artifact.
        flow = TcpFlow(FlowSpec("10.0.0.1", "1.1.1.1", 1000, 443))
        flow._emit(True, b"evil", int(TcpFlags.SYN))
        flow.handshake()
        flow.fin()
        runtime.run(iter(flow.build()))
        assert got[0].weirds.get("data_on_syn") == 1

    def test_campus_traffic_mostly_clean(self):
        from repro.traffic import CampusTrafficGenerator
        got = []
        runtime = Runtime(RuntimeConfig(cores=2), filter_str="tcp",
                          datatype="connection", callback=got.append)
        traffic = CampusTrafficGenerator(seed=33).packets(duration=0.3,
                                                          gbps=0.1)
        runtime.run(iter(traffic))
        weird_conns = [r for r in got if r.weirds]
        assert len(weird_conns) <= len(got) * 0.1
