"""Tests for traffic synthesis: flows, campus mix, workloads, pcap."""

import random

import pytest

from repro.packet import Mbuf, TcpFlags, parse_stack
from repro.traffic import (
    CampusTrafficGenerator,
    FlowSpec,
    HttpsWorkloadGenerator,
    TcpFlow,
    dns_flow,
    http_flow,
    read_pcap,
    single_syn,
    ssh_flow,
    stratosphere_trace,
    tls_flow,
    udp_flow,
    write_pcap,
)
from repro.traffic.pcap import PcapFormatError
from repro.traffic.strato import trace_names


SPEC = FlowSpec("10.1.2.3", "171.64.9.9", 45555, 443)


def stacks(packets):
    return [parse_stack(m) for m in packets]


class TestTcpFlow:
    def test_handshake_sequence(self):
        packets = TcpFlow(SPEC).handshake().build()
        flags = [s.tcp.flags() for s in stacks(packets)]
        assert flags == [TcpFlags.SYN, TcpFlags.SYN | TcpFlags.ACK,
                         TcpFlags.ACK]

    def test_seq_numbers_consistent(self):
        flow = TcpFlow(SPEC)
        flow.handshake()
        flow.send(True, b"x" * 3000, ack_every=0)
        packets = stacks(flow.build())
        data = [s for s in packets if s.l4_payload()]
        first_seq = data[0].tcp.seq_no()
        assert data[1].tcp.seq_no() == first_seq + len(data[0].l4_payload())

    def test_mss_segmentation(self):
        flow = TcpFlow(SPEC, mss=1000)
        flow.handshake()
        flow.send(False, b"y" * 2500, ack_every=0)
        sizes = [len(s.l4_payload()) for s in stacks(flow.build())
                 if s.l4_payload()]
        assert sizes == [1000, 1000, 500]

    def test_delayed_acks_inserted(self):
        flow = TcpFlow(SPEC)
        flow.handshake()
        flow.send(False, b"z" * (1448 * 4), ack_every=2)
        packets = stacks(flow.build())
        acks = [s for s in packets[3:] if not s.l4_payload()]
        assert len(acks) == 2
        assert all(s.tcp.src_port() == 45555 for s in acks)  # from client

    def test_timestamps_monotonic(self):
        flow = TcpFlow(SPEC)
        flow.handshake()
        flow.send(True, b"a" * 5000)
        flow.fin()
        times = [m.timestamp for m in flow.build()]
        assert times == sorted(times)

    def test_fin_teardown_flags(self):
        packets = TcpFlow(SPEC).handshake().fin().build()
        last_three = [s.tcp.flags() for s in stacks(packets)[-3:]]
        assert last_three[0] & TcpFlags.FIN
        assert last_three[1] & TcpFlags.FIN

    def test_shuffle_makes_out_of_order(self):
        rng = random.Random(1)
        flow = TcpFlow(SPEC)
        flow.handshake()
        flow.send(True, b"b" * 10000, ack_every=0)
        in_order = [s.tcp.seq_no() for s in stacks(flow.build())]
        flow.shuffle_segments(rng)
        shuffled = [s.tcp.seq_no() for s in stacks(flow.build())]
        assert shuffled != in_order
        times = [m.timestamp for m in flow.build()]
        assert times == sorted(times)


class TestApplicationFlows:
    def test_tls_flow_parses_back(self):
        """The synthesized TLS flow round-trips through our own parser
        via a real subscription (strongest possible self-check)."""
        from repro import Runtime, RuntimeConfig
        got = []
        rt = Runtime(RuntimeConfig(cores=1), filter_str="tls",
                     datatype="tls_handshake", callback=got.append)
        rt.run(iter(tls_flow(SPEC, "selfcheck.org",
                             cipher_suite=0x1302)))
        assert len(got) == 1
        assert got[0].sni() == "selfcheck.org"
        assert got[0].cipher() == "TLS_AES_256_GCM_SHA384"

    def test_http_flow_shape(self):
        packets = http_flow(FlowSpec("10.1.1.1", "2.2.2.2", 1234, 80),
                            host="h", response_bytes=100)
        payloads = b"".join(s.l4_payload() for s in stacks(packets))
        assert b"GET / HTTP/1.1" in payloads
        assert b"200 OK" in payloads

    def test_ssh_flow_banners(self):
        packets = ssh_flow(FlowSpec("10.1.1.1", "2.2.2.2", 1234, 22))
        payloads = b"".join(s.l4_payload() for s in stacks(packets))
        assert b"SSH-2.0-OpenSSH_8.9p1" in payloads

    def test_dns_flow_two_datagrams(self):
        packets = dns_flow(FlowSpec("10.1.1.1", "8.8.8.8", 5353, 53),
                           name="q.test")
        assert len(packets) == 2
        assert all(s.udp is not None for s in stacks(packets))

    def test_single_syn_is_single_syn(self):
        packets = single_syn(SPEC)
        assert len(packets) == 1
        stack = parse_stack(packets[0])
        assert stack.tcp.flags() == TcpFlags.SYN

    def test_udp_flow_alternates(self):
        packets = udp_flow(FlowSpec("10.1.1.1", "2.2.2.2", 1111, 2222),
                           payload_sizes=(100, 200, 300))
        ports = [parse_stack(m).udp.src_port() for m in packets]
        assert ports == [1111, 2222, 1111]


class TestCampusGenerator:
    @pytest.fixture(scope="class")
    def sample(self):
        gen = CampusTrafficGenerator(seed=7)
        return gen.packets(duration=0.5, gbps=0.3)

    def test_sorted_and_parseable(self, sample):
        times = [m.timestamp for m in sample]
        assert times == sorted(times)
        parsed = [parse_stack(m) for m in sample[:500]]
        assert all(s.ip is not None for s in parsed)

    def test_deterministic(self):
        a = CampusTrafficGenerator(seed=11).packets(0.2, 0.05)
        b = CampusTrafficGenerator(seed=11).packets(0.2, 0.05)
        assert [m.data for m in a] == [m.data for m in b]
        c = CampusTrafficGenerator(seed=12).packets(0.2, 0.05)
        assert [m.data for m in a] != [m.data for m in c]

    def test_rate_roughly_requested(self, sample):
        total_bytes = sum(len(m) for m in sample)
        gbps = total_bytes * 8 / 0.5 / 1e9
        assert 0.1 < gbps < 0.9  # order of the requested 0.3

    def test_mix_calibration(self, sample):
        """Generated statistics approximate Appendix C (Table 2)."""
        from repro.conntrack import FiveTuple
        conns = {}
        for mbuf in sample:
            stack = parse_stack(mbuf)
            tup = FiveTuple.from_stack(stack)
            if tup is None:
                continue
            key = tup.canonical()
            entry = conns.setdefault(key, {"pkts": 0, "proto": tup.protocol,
                                           "syn_only": True})
            entry["pkts"] += 1
            if stack.tcp is None or \
                    not (stack.tcp.flags() & TcpFlags.SYN) or \
                    (stack.tcp.flags() & TcpFlags.ACK):
                if entry["pkts"] > 1 or stack.tcp is None or \
                        not (stack.tcp.flags() & TcpFlags.SYN):
                    entry["syn_only"] = False
        tcp = [c for c in conns.values() if c["proto"] == 6]
        tcp_frac = len(tcp) / len(conns)
        assert 0.58 < tcp_frac < 0.82  # paper: 69.7%
        syn_only = sum(1 for c in tcp if c["pkts"] == 1 and c["syn_only"])
        assert 0.5 < syn_only / len(tcp) < 0.8  # paper: 65%
        avg_pkt = sum(len(m) for m in sample) / len(sample)
        assert 700 < avg_pkt < 1100  # paper: 895 B

    def test_connections_count(self):
        gen = CampusTrafficGenerator(seed=5)
        packets = gen.connections(40, duration=0.2)
        assert packets
        times = [m.timestamp for m in packets]
        assert times == sorted(times)


class TestHttpsWorkload:
    def test_rate_structure(self):
        gen = HttpsWorkloadGenerator(seed=1, response_bytes=64 * 1024)
        packets = gen.packets(requests_per_second=50, duration=0.2)
        assert packets
        times = [m.timestamp for m in packets]
        assert times == sorted(times)

    def test_bytes_per_request(self):
        gen = HttpsWorkloadGenerator(response_bytes=256 * 1024)
        per_req = gen.bytes_per_request()
        assert 256 * 1024 < per_req < 256 * 1024 * 1.25

    def test_handshakes_parse(self):
        from repro import Runtime, RuntimeConfig
        got = []
        gen = HttpsWorkloadGenerator(seed=2, response_bytes=2048)
        rt = Runtime(RuntimeConfig(cores=1), filter_str="tls",
                     datatype="tls_handshake", callback=got.append)
        rt.run(iter(gen.packets(requests_per_second=20, duration=0.2)))
        assert len(got) == 4
        assert all(h.sni() == "bench.nginx.test" for h in got)


class TestStratosphere:
    def test_named_traces(self):
        assert len(trace_names()) == 4
        trace = stratosphere_trace("CTU-Normal-7", duration=5.0)
        assert len(trace) > 100
        times = [m.timestamp for m in trace]
        assert times == sorted(times)

    def test_unknown_trace(self):
        with pytest.raises(KeyError):
            stratosphere_trace("CTU-Normal-99")

    def test_traces_differ(self):
        a = stratosphere_trace("CTU-Normal-7", duration=2.0)
        b = stratosphere_trace("CTU-Normal-12", duration=2.0)
        assert len(a) != len(b)


class TestPcap:
    def test_round_trip(self, tmp_path):
        packets = tls_flow(SPEC, "pcap.example") + \
            dns_flow(FlowSpec("10.1.1.1", "8.8.8.8", 5353, 53),
                     start_ts=1.5)
        path = tmp_path / "trace.pcap"
        written = write_pcap(path, packets)
        assert written == len(packets)
        back = read_pcap(path)
        assert [m.data for m in back] == [m.data for m in packets]
        assert all(abs(a.timestamp - b.timestamp) < 1e-5
                   for a, b in zip(back, packets))

    def test_snaplen_truncation(self, tmp_path):
        packets = [Mbuf(b"\x01" * 1000, timestamp=0.5)]
        path = tmp_path / "snap.pcap"
        write_pcap(path, packets, snaplen=100)
        back = read_pcap(path)
        assert len(back[0].data) == 100

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\x00" * 64)
        with pytest.raises(PcapFormatError):
            read_pcap(path)

    def test_truncated_file(self, tmp_path):
        packets = [Mbuf(b"\x01" * 100)]
        path = tmp_path / "trunc.pcap"
        write_pcap(path, packets)
        data = path.read_bytes()
        path.write_bytes(data[:-50])
        with pytest.raises(PcapFormatError):
            read_pcap(path)

    def test_offline_mode_through_runtime(self, tmp_path):
        """Write a trace, read it back, analyze it — Appendix B's
        offline mode."""
        from repro import Runtime, RuntimeConfig
        path = tmp_path / "offline.pcap"
        write_pcap(path, tls_flow(SPEC, "offline.example.com"))
        got = []
        rt = Runtime(RuntimeConfig(cores=1), filter_str="tls",
                     datatype="tls_handshake", callback=got.append)
        rt.run(iter(read_pcap(path)))
        assert [h.sni() for h in got] == ["offline.example.com"]


class TestPcapPropertyRoundTrip:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=40, deadline=None)
    @given(frames=st.lists(st.binary(min_size=1, max_size=400),
                           min_size=1, max_size=20),
           times=st.lists(st.floats(0, 1e6), min_size=20, max_size=20))
    def test_property_round_trip(self, frames, times, tmp_path_factory):
        """Arbitrary frames and timestamps survive pcap round-trips."""
        path = tmp_path_factory.mktemp("pcap") / "prop.pcap"
        mbufs = [Mbuf(frame, timestamp=ts)
                 for frame, ts in zip(frames, sorted(times))]
        write_pcap(path, mbufs)
        back = read_pcap(path)
        assert [m.data for m in back] == [m.data for m in mbufs]
        for a, b in zip(back, mbufs):
            assert abs(a.timestamp - b.timestamp) < 1e-5
