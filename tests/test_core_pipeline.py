"""Integration tests for the runtime pipeline (Figure 4 behaviours)."""

import pytest

from repro import (
    ConnectionRecord,
    RawPacket,
    Runtime,
    RuntimeConfig,
    Stage,
    Subscription,
    TimeoutConfig,
)
from repro.errors import ConfigError, SubscriptionError
from repro.traffic import (
    FlowSpec,
    dns_flow,
    http_flow,
    single_syn,
    ssh_flow,
    tls_flow,
    udp_flow,
)


def run_subscription(packets, filter_str, datatype, config=None, **kwargs):
    got = []
    config = config or RuntimeConfig(cores=2)
    runtime = Runtime(config, filter_str=filter_str, datatype=datatype,
                      callback=got.append)
    report = runtime.run(iter(sorted(packets, key=lambda m: m.timestamp)),
                         **kwargs)
    return got, report


def spec(i=0, dport=443):
    return FlowSpec(f"10.0.{i // 250}.{i % 250 + 1}", "171.64.7.7",
                    40000 + i, dport)


class TestPacketSubscription:
    def test_fast_path_no_conntrack(self):
        packets = tls_flow(spec(), "a.example.com")
        got, report = run_subscription(packets, "ipv4", "packet")
        assert len(got) == len(packets)
        # Fast path: no connection tracking charged at all.
        assert report.stats.stage_invocations[Stage.CONN_TRACK] == 0
        assert report.stats.conns_created == 0

    def test_fig4a_packets_in_http_connections(self):
        """Figure 4a: buffer while probing, deliver buffered + rest."""
        http_packets = http_flow(spec(0, 80), host="h.test")
        tls_packets = tls_flow(spec(1), "x.com", start_ts=0.001)
        got, report = run_subscription(http_packets + tls_packets,
                                       "http", "packet")
        # The HTTP connection's packets — everything up to termination
        # (the ACK after both FINs arrives once the connection has been
        # removed, matching Figure 4's early deletion).
        assert len(got) == len(http_packets) - 1
        assert all(isinstance(p, RawPacket) for p in got)
        assert all(p.five_tuple is not None for p in got)
        # The buffered handshake packets were delivered on match.
        assert min(len(p.mbuf) for p in got) == 54

    def test_packet_filter_drop_early(self):
        packets = udp_flow(spec(0, 9999))
        got, report = run_subscription(packets, "tcp", "packet")
        assert got == []
        # Dropped by the packet filter: never tracked.
        assert report.stats.stage_invocations[Stage.CONN_TRACK] == 0


class TestConnectionSubscription:
    def test_records_on_termination(self):
        packets = http_flow(spec(), host="h.test", response_bytes=5000)
        got, _ = run_subscription(packets, "", "connection", drain=False)
        assert len(got) == 1
        record = got[0]
        assert record.terminated_gracefully
        assert record.total_packets == len(packets) - 1  # trailing ACK
        assert record.history.startswith("S")

    def test_single_syn_delivered_via_timeout(self):
        packets = single_syn(spec())
        # Advance virtual time past the establish timeout with a second
        # unrelated flow.
        late = single_syn(spec(1), start_ts=10.0)
        got, _ = run_subscription(packets + late, "", "connection",
                                  drain=True)
        assert len(got) == 2
        assert any(r.is_single_syn for r in got)

    def test_no_double_delivery_after_fin(self):
        """The trailing ACK of a FIN teardown must not re-create or
        re-deliver the connection (TIME_WAIT linger)."""
        packets = http_flow(spec(), host="h.test")
        got, report = run_subscription(packets, "", "connection")
        assert len(got) == 1
        assert report.stats.conns_created == 1

    def test_conn_filter_discards_other_services(self):
        """ConnectionRecord filtered to tls: http flows are dropped at
        the connection filter and never delivered."""
        packets = (
            tls_flow(spec(0), "a.test") + http_flow(spec(1, 80), host="b")
        )
        got, _ = run_subscription(packets, "tls", "connection")
        assert len(got) == 1
        assert got[0].service == "tls"

    def test_session_filter_gates_connection_records(self):
        """The Figure 7 workload shape: records only for matching SNI."""
        packets = (
            tls_flow(spec(0), "occ-0-1.1.nflxvideo.net")
            + tls_flow(spec(1), "www.example.com", start_ts=0.3)
        )
        got, report = run_subscription(
            packets, "tcp.port = 443 and tls.sni ~ '(.+?\\.)?nflxvideo\\.net'",
            "connection")
        assert len(got) == 1
        assert got[0].service == "tls"
        assert report.stats.sessions_parsed == 2
        assert report.stats.sessions_matched == 1

    def test_rst_terminates(self):
        packets = tls_flow(spec(), "r.test", teardown="rst")
        got, _ = run_subscription(packets, "", "connection", drain=False)
        assert len(got) == 1
        assert got[0].history.endswith("R")

    def test_udp_records(self):
        packets = dns_flow(spec(0, 53), name="q.example")
        got, _ = run_subscription(packets, "udp", "connection")
        assert len(got) == 1
        assert got[0].five_tuple.protocol == 17


class TestSessionSubscription:
    def test_tls_handshake_delivery(self):
        packets = tls_flow(spec(), "video.netflix.com",
                           cipher_suite=0xC02F, selected_version=None)
        got, report = run_subscription(packets, "tls", "tls_handshake")
        assert len(got) == 1
        assert got[0].sni() == "video.netflix.com"
        assert got[0].cipher() == "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256"

    def test_early_conn_drop_after_handshake(self):
        """Figure 4b: after delivering the handshake, the connection's
        heavy state is freed even though data keeps flowing."""
        packets = tls_flow(spec(), "x.com", appdata_bytes=200_000)
        got, report = run_subscription(packets, "tls", "tls_handshake")
        assert len(got) == 1
        # Parsing must stop after the handshake: far fewer parse calls
        # than payload packets.
        assert report.stats.stage_invocations[Stage.PARSING] < 10

    def test_session_filter_regex(self):
        packets = (
            tls_flow(spec(0), "a.shop.com")
            + tls_flow(spec(1), "b.example.org", start_ts=0.4)
        )
        got, _ = run_subscription(packets, "tls.sni ~ '.*\\.com$'",
                                  "tls_handshake")
        assert [hs.sni() for hs in got] == ["a.shop.com"]

    def test_http_transactions_keep_coming(self):
        packets = http_flow(spec(0, 80), host="h.test", uri="/one")
        got, _ = run_subscription(packets, "http", "http_transaction")
        assert len(got) == 1
        assert got[0].uri() == "/one"

    def test_ssh_handshake(self):
        packets = ssh_flow(spec(0, 22), client_software="OpenSSH_9.3")
        got, _ = run_subscription(packets, "ssh", "ssh_handshake")
        assert len(got) == 1
        assert got[0].client_software() == "OpenSSH_9.3"

    def test_dns_transaction(self):
        packets = dns_flow(spec(0, 53), name="www.stanford.edu",
                           rcode=0)
        got, _ = run_subscription(packets, "dns", "dns_transaction")
        assert len(got) == 1
        assert got[0].query_name() == "www.stanford.edu"

    def test_session_sub_filter_on_other_protocol_rejected(self):
        with pytest.raises(SubscriptionError):
            Subscription("http", "tls_handshake", lambda x: None)

    def test_mid_connection_tls_never_delivers(self):
        """A flow whose handshake was missed (ciphertext only) probes,
        fails, and is discarded without delivery."""
        from repro.traffic.flows import TcpFlow
        from repro.protocols.tls.build import build_application_data
        flow = TcpFlow(spec())
        flow.handshake()
        flow.send(True, b"\x99" * 500)  # not TLS records
        flow.fin()
        got, _ = run_subscription(flow.build(), "tls", "tls_handshake")
        assert got == []


class TestLazinessProperties:
    def test_reassembly_skipped_for_track_state(self):
        """After the session filter resolves, remaining packets are not
        reassembled (the Figure 7 claim)."""
        packets = tls_flow(spec(), "big.example.net",
                           appdata_bytes=500_000)
        got, report = run_subscription(
            packets, "tls.sni ~ 'example'", "connection")
        data_packets = sum(1 for p in packets if len(p) > 100)
        reassembled = report.stats.stage_invocations[Stage.REASSEMBLY]
        assert reassembled < data_packets * 0.2

    def test_non_matching_sni_stops_all_processing(self):
        packets = tls_flow(spec(), "big.example.net",
                           appdata_bytes=500_000)
        got, report = run_subscription(
            packets, "tls.sni ~ 'netflix'", "connection")
        assert got == []
        assert report.stats.stage_invocations[Stage.REASSEMBLY] < 20

    def test_hw_filter_cuts_ingress(self):
        """With hardware filtering on, non-TCP never reaches software."""
        packets = (tls_flow(spec(0), "x.com")
                   + dns_flow(spec(1, 53), start_ts=0.1))
        got, report = run_subscription(packets, "tcp and ipv4",
                                       "packet")
        assert report.stats.hw_dropped_packets == 2  # the DNS pair
        assert report.stats.stage_invocations[Stage.PACKET_FILTER] == \
            len(packets) - 2

    def test_hw_filter_disabled(self):
        packets = dns_flow(spec(1, 53))
        cfg = RuntimeConfig(cores=1, hardware_filter=False)
        got, report = run_subscription(packets, "tcp and ipv4", "packet",
                                       config=cfg)
        assert report.stats.hw_dropped_packets == 0
        assert got == []  # software filter still drops


class TestSinkSampling:
    def test_sink_reduces_processed_share(self):
        # One-packet flows so the dropped-packet fraction equals the
        # dropped-four-tuple fraction the redirection table implements.
        packets = [m for i in range(400)
                   for m in single_syn(spec(i), start_ts=i * 1e-4)]
        cfg = RuntimeConfig(cores=2, sink_fraction=0.5)
        got, report = run_subscription(packets, "", "connection",
                                       config=cfg)
        frac = report.stats.sink_dropped_packets / \
            report.stats.ingress_packets
        assert 0.35 < frac < 0.65


class TestTimeoutSchemes:
    def test_no_timeout_keeps_syns(self):
        packets = [m for i in range(50) for m in single_syn(spec(i),
                                                            start_ts=0.01 * i)]
        cfg = RuntimeConfig(cores=1,
                            timeouts=TimeoutConfig.no_timeouts())
        runtime = Runtime(cfg, filter_str="", datatype="connection",
                          callback=lambda r: None)
        runtime.run(iter(packets), drain=False)
        assert runtime.live_connections == 50

    def test_default_timeout_reaps_syns(self):
        packets = [m for i in range(50) for m in single_syn(spec(i),
                                                            start_ts=0.01 * i)]
        # A late packet pushes virtual time past the establish timeout.
        packets += single_syn(spec(99), start_ts=30.0)
        cfg = RuntimeConfig(cores=1)
        runtime = Runtime(cfg, filter_str="", datatype="connection",
                          callback=lambda r: None)
        runtime.run(iter(packets), drain=False)
        assert runtime.live_connections <= 1


class TestConfigValidation:
    def test_bad_cores(self):
        with pytest.raises(ConfigError):
            RuntimeConfig(cores=0)

    def test_bad_sink(self):
        with pytest.raises(ConfigError):
            RuntimeConfig(sink_fraction=2.0)

    def test_bad_mode(self):
        with pytest.raises(ConfigError):
            RuntimeConfig(filter_mode="jit")

    def test_unknown_datatype(self):
        with pytest.raises(SubscriptionError):
            Subscription("", "flowlets", lambda x: None)
