"""Tests for JA3 client fingerprinting and DNS answer decoding."""

import hashlib

import pytest

from repro import Runtime, RuntimeConfig
from repro.protocols import DnsParser, ParseResult, TlsParser
from repro.protocols.dns.build import build_dns_query, build_dns_response
from repro.protocols.tls.build import build_client_hello, \
    build_server_hello
from repro.protocols.tls.data import is_grease
from repro.stream.pdu import StreamSegment
from repro.traffic import FlowSpec, dns_flow, tls_flow


def seg(payload, from_orig=True):
    return StreamSegment(payload, from_orig, 0.0)


class TestGrease:
    def test_grease_values(self):
        for value in (0x0A0A, 0x1A1A, 0xFAFA):
            assert is_grease(value)
        for value in (0x1301, 0x0A1A, 0x00FF, 0xC02F):
            assert not is_grease(value)


class TestJa3:
    def _handshake(self, **kwargs):
        parser = TlsParser()
        parser.parse(seg(build_client_hello(
            "ja3.example", bytes(32), **kwargs)))
        parser.parse(seg(build_server_hello(bytes(range(32, 64))),
                         from_orig=False))
        return parser.handshake_data

    def test_ja3_string_structure(self):
        data = self._handshake(
            cipher_suites=[0x1301, 0xC02F],
            supported_groups=[0x001D, 0x0017],
            ec_point_formats=[0],
        )
        fields = data.ja3_string().split(",")
        assert len(fields) == 5
        assert fields[0] == "771"              # TLS 1.2 client version
        assert fields[1] == "4865-49199"       # ciphers, dash-joined
        assert fields[3] == "29-23"            # groups
        assert fields[4] == "0"                # point formats

    def test_ja3_md5(self):
        data = self._handshake()
        assert data.ja3() == hashlib.md5(
            data.ja3_string().encode()).hexdigest()
        assert len(data.ja3()) == 32

    def test_grease_excluded(self):
        noisy = self._handshake(
            cipher_suites=[0x0A0A, 0x1301],
            supported_groups=[0x1A1A, 0x001D],
        )
        clean = self._handshake(
            cipher_suites=[0x1301],
            supported_groups=[0x001D],
        )
        assert noisy.ja3() == clean.ja3()

    def test_different_clients_differ(self):
        a = self._handshake(cipher_suites=[0x1301])
        b = self._handshake(cipher_suites=[0x1302])
        assert a.ja3() != b.ja3()

    def test_extension_order_captured(self):
        data = self._handshake()
        # sni(0), groups(10), formats(11) at minimum, in offer order.
        assert data.client_extensions[:3] == [0, 10, 11]

    def test_end_to_end_through_runtime(self):
        seen = []
        runtime = Runtime(RuntimeConfig(cores=1), filter_str="tls",
                          datatype="tls_handshake",
                          callback=lambda h: seen.append(h.data.ja3()))
        runtime.run(iter(tls_flow(
            FlowSpec("10.0.0.1", "1.1.1.1", 1000, 443), "e2e.example")))
        assert len(seen) == 1 and len(seen[0]) == 32

    def test_no_client_hello_no_ja3(self):
        from repro.protocols.tls.data import TlsHandshakeData
        assert TlsHandshakeData().ja3() is None


class TestDnsAnswers:
    def _transaction(self, response):
        parser = DnsParser()
        parser.parse(seg(build_dns_query("q.example", txn_id=5)))
        parser.parse(seg(response, from_orig=False))
        return parser.drain_sessions()[0].data

    def test_a_record_decoded(self):
        txn = self._transaction(build_dns_response(
            "q.example", "93.184.216.34", txn_id=5, ttl=1234))
        assert len(txn.answers) == 1
        answer = txn.answers[0]
        assert answer.name == "q.example"
        assert answer.type_name == "A"
        assert answer.value == "93.184.216.34"
        assert answer.ttl == 1234

    def test_aaaa_record_decoded(self):
        txn = self._transaction(build_dns_response(
            "q.example", "2606:2800:220:1::1", qtype="AAAA", txn_id=5))
        assert txn.answers[0].type_name == "AAAA"
        assert txn.answers[0].value == "2606:2800:220:1::1"

    def test_nxdomain_no_answers(self):
        txn = self._transaction(build_dns_response(
            "q.example", txn_id=5, rcode=3))
        assert txn.answers == []
        assert txn.rcode_name() == "NXDOMAIN"

    def test_end_to_end(self):
        got = []
        runtime = Runtime(RuntimeConfig(cores=1), filter_str="dns",
                          datatype="dns_transaction", callback=got.append)
        runtime.run(iter(dns_flow(
            FlowSpec("10.0.0.1", "8.8.8.8", 5000, 53),
            name="ans.example", answer="1.2.3.4")))
        assert got[0].data.answers[0].value == "1.2.3.4"

    def test_truncated_answers_tolerated(self):
        response = build_dns_response("q.example", txn_id=5)
        txn = self._transaction(response[:len(response) - 3])
        assert txn.answers == []  # clean degradation
