"""Shared-memory ring transport (ISSUE 10).

Three layers under test:

- **Slot codec** — ``slot_write_mbufs`` / ``slot_write_packed`` /
  ``slot_read`` round-trip the full PackedBatch wire layout inside a
  plain buffer, refuse oversize bursts instead of overrunning, and hand
  back zero-copy blob views.
- **Ring mechanics** — SPSC descriptor publication with lap-tag
  validation, credit-based slot recycling, and the never-overwrite-a-
  live-slot guarantee when the ring is smaller than the in-flight batch
  count (satellite: slot exhaustion + wraparound, 1/2/4 workers, crash
  mid-flight).
- **End-to-end determinism** — AggregateStats byte-identical shm vs
  queue vs sequential, with spans/tenancy/netem/overload riding the
  batches, and supervised crash replay byte-identical under either
  transport.
"""

import json

import pytest

from repro import FaultPlan, FaultSpec, Runtime, RuntimeConfig
from repro.core import shm
from repro.core.parallel import ParallelExecutionError
from repro.errors import ConfigError
from repro.packet.batch import (
    PackedBatch,
    SLOT_HEADER_BYTES,
    slot_read,
    slot_write_mbufs,
    slot_write_packed,
)
from repro.traffic import CampusTrafficGenerator

pytestmark = pytest.mark.skipif(
    not shm.shm_available(),
    reason="multiprocessing.shared_memory unavailable")


@pytest.fixture(scope="module")
def traffic():
    return list(CampusTrafficGenerator(seed=21).packets(
        duration=0.4, gbps=0.1))


def _run(traffic, parallel=True, cores=4, filter_str="tcp",
         datatype="connection", **config_kwargs):
    config = RuntimeConfig(cores=cores, parallel=parallel,
                           **config_kwargs)
    runtime = Runtime(config, filter_str=filter_str, datatype=datatype,
                      callback=None)
    return runtime.run(iter(traffic))


# ---------------------------------------------------------------------------
# slot codec
# ---------------------------------------------------------------------------

class TestSlotCodec:
    def _mbufs(self, traffic, n=32):
        return traffic[:n]

    def test_mbuf_round_trip(self, traffic):
        mbufs = self._mbufs(traffic)
        buf = memoryview(bytearray(1 << 20))
        written = slot_write_mbufs(buf, 0, len(buf), mbufs, 3)
        assert written > SLOT_HEADER_BYTES
        batch, seq = slot_read(buf, 0)
        assert seq == -1
        assert batch.queue == 3
        assert len(batch) == len(mbufs)
        out = list(batch.unpack())
        for orig, view in zip(mbufs, out):
            assert bytes(view.data) == bytes(orig.data)
            assert view.timestamp == orig.timestamp
            assert view.port == orig.port

    def test_packed_round_trip_matches_mbuf_write(self, traffic):
        """slot_write_packed(pack(mbufs)) lays down the identical wire
        bytes slot_write_mbufs(mbufs) does — the redo log replays the
        exact slot contents."""
        mbufs = self._mbufs(traffic)
        direct = memoryview(bytearray(1 << 20))
        via_pack = memoryview(bytearray(1 << 20))
        n1 = slot_write_mbufs(direct, 0, len(direct), mbufs, 1)
        n2 = slot_write_packed(via_pack, 0, len(via_pack),
                               PackedBatch.pack(mbufs, 1))
        assert n1 == n2
        assert bytes(direct[:n1]) == bytes(via_pack[:n2])

    def test_trace_ctx_and_seq_round_trip(self, traffic):
        mbufs = self._mbufs(traffic, 8)
        buf = memoryview(bytearray(1 << 20))
        slot_write_mbufs(buf, 0, len(buf), mbufs, 0,
                         trace_ctx=(2, 17), seq=41)
        batch, seq = slot_read(buf, 0)
        assert seq == 41
        assert batch.trace_ctx == (2, 17)

    def test_oversize_burst_refused(self, traffic):
        mbufs = self._mbufs(traffic)
        buf = memoryview(bytearray(1 << 20))
        assert slot_write_mbufs(buf, 0, 128, mbufs, 0) == -1
        assert slot_write_packed(buf, 0, 128,
                                 PackedBatch.pack(mbufs, 0)) == -1

    def test_offset_respected(self, traffic):
        mbufs = self._mbufs(traffic, 4)
        buf = memoryview(bytearray(1 << 20))
        canary = b"\xee" * 64
        buf[0:64] = canary
        written = slot_write_mbufs(buf, 64, 4096, mbufs, 0)
        assert written > 0
        assert bytes(buf[0:64]) == canary
        batch, _ = slot_read(buf, 64)
        assert len(batch) == 4

    def test_blob_is_zero_copy_view(self, traffic):
        mbufs = self._mbufs(traffic, 4)
        buf = memoryview(bytearray(1 << 20))
        slot_write_mbufs(buf, 0, len(buf), mbufs, 0)
        batch, _ = slot_read(buf, 0)
        assert isinstance(batch.blob, memoryview)
        assert batch.blob.obj is buf.obj

    def test_empty_batch(self):
        buf = memoryview(bytearray(4096))
        written = slot_write_mbufs(buf, 0, len(buf), [], 2)
        assert written == SLOT_HEADER_BYTES
        batch, _ = slot_read(buf, 0)
        assert len(batch) == 0
        assert batch.queue == 2


# ---------------------------------------------------------------------------
# ring mechanics (feeder channel against a simulated consumer)
# ---------------------------------------------------------------------------

def _alive():
    return True


def _no_block(_seconds):
    pass


class _SimConsumer:
    """Drives a ShmWorkerChannel against an in-process feeder so ring
    behavior is testable without real worker processes."""

    def __init__(self, feeder):
        self.chan = shm.ShmWorkerChannel(feeder.name,
                                         feeder.layout.ring_size,
                                         feeder.layout.slot_bytes)
        self.ordinal = 0
        self.batches = []

    def consume_one(self):
        kind, slot, rows = self.chan.wait_descriptor(self.ordinal)
        if kind == shm.KIND_BATCH:
            batch, seq = self.chan.read_batch(slot)
            # Copy out: the slot is recycled the moment we credit it.
            self.batches.append((seq, [bytes(m.data)
                                       for m in batch.unpack()], rows))
        self.ordinal += 1
        self.chan.mark_consumed(self.ordinal)
        return kind

    def close(self):
        self.chan.close()


@pytest.fixture
def tiny_channel():
    feeder = shm.ShmFeederChannel(0, shm.ShmLayout(2, 1 << 16))
    try:
        yield feeder
    finally:
        feeder.close()


class TestRingMechanics:
    def test_wraparound_many_laps(self, traffic, tiny_channel):
        """A 2-entry ring carries far more batches than its size; tags
        keep each lap's descriptors distinct and every payload lands
        intact and in order."""
        consumer = _SimConsumer(tiny_channel)
        try:
            sent = []
            for i in range(25):
                mbufs = traffic[i * 4:(i + 1) * 4]
                sent.append([bytes(m.data) for m in mbufs])
                while not tiny_channel.send_mbufs(
                        mbufs, 0, None, _alive, _no_block):
                    raise AssertionError("burst did not fit")
                consumer.consume_one()
            assert [payload for _, payload, _ in consumer.batches] == sent
        finally:
            consumer.close()

    def test_full_ring_blocks_feeder(self, traffic, tiny_channel):
        """With both slots in flight the feeder's capacity wait must
        trip (and be accounted), not overwrite a live slot."""
        consumer = _SimConsumer(tiny_channel)
        try:
            first = [bytes(m.data) for m in traffic[0:4]]
            second = [bytes(m.data) for m in traffic[4:8]]
            assert tiny_channel.send_mbufs(traffic[0:4], 0, None,
                                           _alive, _no_block)
            assert tiny_channel.send_mbufs(traffic[4:8], 0, None,
                                           _alive, _no_block)
            # Ring full: a dead-worker poll must surface, proving the
            # feeder waited instead of clobbering slot 0.
            with pytest.raises(shm.WorkerGone):
                tiny_channel.send_mbufs(traffic[8:12], 0, None,
                                        lambda: False, _no_block)
            assert tiny_channel.slot_starvation_waits == 1
            assert tiny_channel.slot_starvation_seconds > 0
            # The in-flight payloads survived the blocked attempt.
            consumer.consume_one()
            consumer.consume_one()
            assert consumer.batches[0][1] == first
            assert consumer.batches[1][1] == second
            # Credits returned: the third burst now goes through.
            assert tiny_channel.send_mbufs(traffic[8:12], 0, None,
                                           _alive, _no_block)
            consumer.consume_one()
            assert consumer.batches[2][1] == \
                [bytes(m.data) for m in traffic[8:12]]
        finally:
            consumer.close()

    def test_slot_recycled_only_after_credit(self, traffic,
                                             tiny_channel):
        """A consumed-but-uncredited descriptor keeps its slot out of
        the free pool."""
        assert tiny_channel.send_mbufs(traffic[0:2], 0, None,
                                       _alive, _no_block)
        assert len(tiny_channel._free) == 1
        assert tiny_channel.send_mbufs(traffic[2:4], 0, None,
                                       _alive, _no_block)
        assert len(tiny_channel._free) == 0
        consumer = _SimConsumer(tiny_channel)
        try:
            consumer.consume_one()
            tiny_channel._refresh_consumed()
            assert len(tiny_channel._free) == 1
        finally:
            consumer.close()

    def test_ctrl_and_sample_occupy_ring_order(self, tiny_channel,
                                               traffic):
        consumer = _SimConsumer(tiny_channel)
        try:
            assert tiny_channel.send_mbufs(traffic[0:2], 0, None,
                                           _alive, _no_block)
            tiny_channel.send_sample(_alive, _no_block)
            assert consumer.consume_one() == shm.KIND_BATCH
            assert consumer.consume_one() == shm.KIND_SAMPLE
            tiny_channel.send_ctrl(_alive, _no_block)
            assert consumer.consume_one() == shm.KIND_CTRL
        finally:
            consumer.close()

    def test_reset_rearms_ordinal_space(self, tiny_channel, traffic):
        assert tiny_channel.send_mbufs(traffic[0:2], 0, None,
                                       _alive, _no_block)
        assert tiny_channel.send_mbufs(traffic[2:4], 0, None,
                                       _alive, _no_block)
        tiny_channel.reset()
        assert tiny_channel.ordinal == 0
        assert len(tiny_channel._free) == 2
        consumer = _SimConsumer(tiny_channel)
        try:
            assert tiny_channel.send_mbufs(traffic[4:6], 0, None,
                                           _alive, _no_block)
            consumer.consume_one()
            assert consumer.batches[0][1] == \
                [bytes(m.data) for m in traffic[4:6]]
        finally:
            consumer.close()

    def test_ring_highwater_tracks_depth(self, tiny_channel, traffic):
        assert tiny_channel.ring_highwater == 0
        tiny_channel.send_mbufs(traffic[0:2], 0, None, _alive, _no_block)
        tiny_channel.send_mbufs(traffic[2:4], 0, None, _alive, _no_block)
        assert tiny_channel.ring_highwater == 2


# ---------------------------------------------------------------------------
# transport equivalence: shm vs queue vs sequential
# ---------------------------------------------------------------------------

class TestTransportEquivalence:
    def test_shm_vs_queue_vs_sequential(self, traffic):
        for cores in (1, 2, 4):
            seq = _run(traffic, parallel=False,
                       cores=cores).stats.to_dict()
            for ipc in ("shm", "queue"):
                par = _run(traffic, cores=cores,
                           ipc_transport=ipc).stats.to_dict()
                assert par == seq, f"{ipc} diverged at {cores} cores"

    def test_tiny_ring_forces_starvation_and_stays_identical(
            self, traffic):
        """Slot exhaustion (satellite): a 2-deep ring at 1/2/4 workers
        blocks the feeder instead of corrupting batches."""
        for cores in (1, 2, 4):
            baseline = _run(traffic, parallel=False, cores=cores,
                            parallel_batch_size=32).stats.to_dict()
            par = _run(traffic, cores=cores, ipc_transport="shm",
                       parallel_queue_depth=2,
                       parallel_batch_size=32).stats.to_dict()
            assert par == baseline, f"tiny ring diverged at {cores}"

    def test_oversize_batches_fall_back_to_ctrl(self, traffic):
        """Slots too small for any burst: every batch takes the CTRL
        fallback and the run still matches byte-for-byte."""
        baseline = _run(traffic, parallel=False,
                        cores=2).stats.to_dict()
        par = _run(traffic, cores=2, ipc_transport="shm",
                   ipc_slot_bytes=4096,
                   parallel_batch_size=256).stats.to_dict()
        assert par == baseline

    def test_adaptive_sizing_stats_invariant(self, traffic):
        fixed = _run(traffic, cores=2, ipc_transport="shm",
                     ipc_adaptive_batch=False).stats.to_dict()
        adaptive = _run(traffic, cores=2, ipc_transport="shm",
                        ipc_adaptive_batch=True,
                        parallel_batch_size=16,
                        ipc_max_batch=512).stats.to_dict()
        assert adaptive == fixed

    def test_spans_identical_across_transports(self, traffic):
        kwargs = dict(cores=2, span_sample=1, flight_recorder_depth=4)
        via_shm = _run(traffic, ipc_transport="shm", **kwargs)
        via_queue = _run(traffic, ipc_transport="queue", **kwargs)
        assert via_shm.stats.to_dict() == via_queue.stats.to_dict()
        assert via_shm.spans is not None
        assert via_shm.spans.to_dict() == via_queue.spans.to_dict()

    def test_netem_identical_across_transports(self, traffic):
        from repro.config import ImpairmentConfig

        impair = ImpairmentConfig(seed=7, loss_rate=0.05,
                                  reorder_rate=0.05,
                                  duplicate_rate=0.02)
        seq = _run(traffic, parallel=False, impairment=impair)
        for ipc in ("shm", "queue"):
            par = _run(traffic, cores=4, ipc_transport=ipc,
                       impairment=impair)
            assert par.stats.to_dict() == seq.stats.to_dict()
            assert par.impairment.to_dict() == seq.impairment.to_dict()

    def test_overload_identical_across_transports(self, traffic):
        kwargs = dict(filter_str="tcp", datatype="connection",
                      overload_policy="ladder",
                      overload_target_lag=0.0001)
        seq = _run(traffic, parallel=False, **kwargs)
        for ipc in ("shm", "queue"):
            par = _run(traffic, cores=4, ipc_transport=ipc, **kwargs)
            assert par.stats.to_dict() == seq.stats.to_dict()
            assert par.overload.to_dict() == seq.overload.to_dict()

    def test_tenancy_epoch_swap_across_transports(self, traffic):
        from repro.tenancy.runtime import TenantRuntime
        from repro.tenancy.spec import parse_reconfigure, \
            parse_subscriptions

        specs = parse_subscriptions(json.dumps({"tenants": [
            {"name": "alpha", "filter": "tcp",
             "datatype": "connection", "callback": "count"},
            {"name": "beta", "filter": "udp",
             "datatype": "packet", "callback": "count"},
        ]}))
        events = [parse_reconfigure("0.2:drop:beta")]

        def run(parallel, ipc="auto"):
            config = RuntimeConfig(cores=2, parallel=parallel,
                                   ipc_transport=ipc)
            runtime = TenantRuntime(config, specs, events=events)
            return runtime.run(iter(traffic))

        seq = run(False)
        via_shm = run(True, "shm")
        via_queue = run(True, "queue")
        assert via_shm.stats.to_dict() == seq.stats.to_dict()
        assert via_queue.stats.to_dict() == seq.stats.to_dict()


# ---------------------------------------------------------------------------
# supervised crash replay (slot contents replayed byte-identically)
# ---------------------------------------------------------------------------

class TestSupervisedReplay:
    def _crash_run(self, traffic, ipc, cores=2, depth=8):
        plan = FaultPlan(seed=1, faults=(
            FaultSpec(kind="worker_crash", at_batch=1, core=1),))
        return _run(traffic, cores=cores, ipc_transport=ipc,
                    fault_plan=plan, supervise=True,
                    parallel_queue_depth=depth)

    def test_crash_replay_matches_queue_transport(self, traffic):
        via_shm = self._crash_run(traffic, "shm")
        via_queue = self._crash_run(traffic, "queue")
        assert via_shm.stats.to_dict() == via_queue.stats.to_dict()
        assert via_shm.faults.to_dict() == via_queue.faults.to_dict()
        assert via_shm.faults.worker_restarts == 1

    def test_crash_replay_deterministic_and_isolated(self, traffic):
        """Same crash, run twice: byte-identical; and cores the fault
        never touched match a fault-free shm run bit-for-bit."""
        one = self._crash_run(traffic, "shm", cores=4)
        two = self._crash_run(traffic, "shm", cores=4)
        assert one.stats.to_dict() == two.stats.to_dict()
        assert one.faults.to_dict() == two.faults.to_dict()
        clean = _run(traffic, cores=4, ipc_transport="shm")
        for core in (0, 2, 3):
            assert one.core_stats[core].to_dict() == \
                clean.core_stats[core].to_dict(), f"core {core} diverged"

    def test_crash_mid_flight_on_tiny_ring(self, traffic):
        """Satellite: crash while the 2-deep ring is saturated, at
        1/2/4 workers — restart resets the ring, the redo log replays
        into fresh slots, and the outcome is byte-identical to the
        queue transport under the identical crash."""
        for cores in (1, 2, 4):
            plan = FaultPlan(seed=1, faults=(
                FaultSpec(kind="worker_crash", at_batch=2, core=0),))
            kwargs = dict(cores=cores, fault_plan=plan, supervise=True,
                          parallel_queue_depth=2,
                          parallel_batch_size=32)
            via_shm = _run(traffic, ipc_transport="shm", **kwargs)
            via_queue = _run(traffic, ipc_transport="queue", **kwargs)
            assert via_shm.stats.to_dict() == \
                via_queue.stats.to_dict(), \
                f"crash on tiny ring diverged at {cores} workers"
            assert via_shm.faults.to_dict() == via_queue.faults.to_dict()
            assert via_shm.faults.worker_restarts == 1


# ---------------------------------------------------------------------------
# health + config + CLI surfaces
# ---------------------------------------------------------------------------

class TestHealthAndConfig:
    def test_backend_health_reports_shm(self, traffic):
        report = _run(traffic, cores=2, ipc_transport="shm",
                      telemetry=True)
        health = report.backend_health
        assert health["transport"] == "shm"
        assert health["ring_size"] >= 1
        assert health["slot_bytes"] >= 4096
        assert "slot_starvation_seconds" in health
        for row in health["workers"]:
            assert "ring_highwater" in row
            assert "slot_starvation_waits" in row
        # Descriptor-only IPC: ~8 bytes per batch, far below one byte
        # per packet for any realistic batch size.
        assert 0 < health["ipc_bytes_per_packet"] < 2.0

    def test_backend_health_reports_queue(self, traffic):
        report = _run(traffic, cores=2, ipc_transport="queue",
                      telemetry=True)
        health = report.backend_health
        assert health["transport"] == "queue"
        assert "ring_highwater" not in health
        # The queue transport ships the whole flat buffer per batch.
        assert health["ipc_bytes_per_packet"] > 50

    def test_prometheus_ring_families_gated(self, traffic):
        from repro.telemetry.export import render_metrics

        def render(ipc):
            report = _run(traffic, cores=2, ipc_transport=ipc,
                          telemetry=True)
            return render_metrics(report.stats, report.backend_health,
                                  include_volatile=True)

        shm_text = render("shm")
        queue_text = render("queue")
        assert "repro_worker_ring_highwater" in shm_text
        assert "repro_worker_slot_starvation_total" in shm_text
        assert "repro_slot_starvation_seconds" in shm_text
        assert "repro_worker_ring_highwater" not in queue_text
        assert "repro_slot_starvation_seconds" not in queue_text

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            RuntimeConfig(ipc_transport="carrier-pigeon")
        with pytest.raises(ConfigError):
            RuntimeConfig(ipc_slot_bytes=100)
        with pytest.raises(ConfigError):
            RuntimeConfig(parallel_batch_size=256, ipc_max_batch=8)
        RuntimeConfig(ipc_transport="queue", ipc_slot_bytes=8192,
                      ipc_max_batch=1024)

    def test_cli_rejects_ipc_without_parallel(self, capsys):
        from repro.cli import main

        assert main(["--ipc", "shm", "--duration", "0.1"]) == 2
        err = capsys.readouterr().err
        assert "--ipc" in err and "--parallel" in err

    def test_cli_ipc_smoke(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "stats.json"
        rc = main(["--ipc", "shm", "--parallel", "2",
                   "--duration", "0.1", "--json-stats", str(out)])
        assert rc == 0
        assert json.loads(out.read_text())["ingress_packets"] > 0
