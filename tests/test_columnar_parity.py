"""Columnar-vs-scalar parity over a malformed-frame corpus.

The columnar hot path (bulk header decode, mask-based batch filters,
column-keyed conntrack) must agree with the scalar parse-once path on
*every* frame: fast rows bit-for-bit, slow rows by falling back to
``parse_stack``. This suite drives a corpus of VLAN, QinQ, IPv4-option,
IPv6, extension-header, fragmented, truncated, and plain frames through
both and asserts identical five-tuples, filter verdicts (codegen and
interp), and end-to-end AggregateStats.
"""

import json
import struct

import pytest

from repro import Runtime, RuntimeConfig
from repro.filter import compile_filter
from repro.filter.batch import NO_MATCH, encode_verdict
from repro.packet import (
    Mbuf,
    build_icmp_echo,
    build_tcp_packet,
    build_udp_packet,
    parse_stack,
)
from repro.packet.columnar import decode_mbufs

ETHERTYPE_VLAN = 0x8100
ETHERTYPE_QINQ = 0x88A8


def _vlan(frame: bytes, tci: int = 0x0064,
          tpid: int = ETHERTYPE_VLAN) -> bytes:
    """Splice one 802.1Q/802.1ad tag after the MAC addresses."""
    return (frame[:12] + struct.pack("!HH", tpid, tci) + frame[12:])


def _ipv4_with_options(frame: bytes) -> bytes:
    """Grow IHL to 6 and splice in one 4-byte option word."""
    out = bytearray(frame)
    out[14] = 0x46
    total_len = struct.unpack_from("!H", out, 16)[0] + 4
    struct.pack_into("!H", out, 16, total_len)
    return bytes(out[:34]) + b"\x01\x01\x01\x00" + bytes(out[34:])


def _ipv4_fragment(frame: bytes, offset_words: int = 4) -> bytes:
    """Set a non-zero fragment offset (a non-first fragment)."""
    out = bytearray(frame)
    struct.pack_into("!H", out, 20, offset_words & 0x1FFF)
    return bytes(out)


def _ipv6_with_hopopts(frame: bytes) -> bytes:
    """Insert a hop-by-hop extension header before the transport."""
    out = bytearray(frame)
    transport_proto = out[20]
    out[20] = 0  # next header: hop-by-hop
    plen = struct.unpack_from("!H", out, 18)[0] + 8
    struct.pack_into("!H", out, 18, plen)
    ext = bytes([transport_proto, 0]) + b"\x00" * 6
    return bytes(out[:54]) + ext + bytes(out[54:])


def _tcp4(payload=b"hello", **kw):
    kw.setdefault("src", "10.0.0.1")
    kw.setdefault("dst", "192.168.1.2")
    kw.setdefault("src_port", 33000)
    kw.setdefault("dst_port", 443)
    return build_tcp_packet(payload=payload, **kw)


def _udp4(payload=b"q", **kw):
    kw.setdefault("src", "10.0.0.9")
    kw.setdefault("dst", "8.8.8.8")
    kw.setdefault("src_port", 5353)
    kw.setdefault("dst_port", 53)
    return build_udp_packet(payload=payload, **kw)


def _tcp6(payload=b"v6 payload", **kw):
    kw.setdefault("src", "2001:db8::1")
    kw.setdefault("dst", "2001:db8:ffff::2")
    kw.setdefault("src_port", 50000)
    kw.setdefault("dst_port", 443)
    return build_tcp_packet(payload=payload, **kw)


def _udp6(payload=b"dns", **kw):
    kw.setdefault("src", "2001:db8::9")
    kw.setdefault("dst", "2606:4700::1111")
    kw.setdefault("src_port", 40000)
    kw.setdefault("dst_port", 53)
    return build_udp_packet(payload=payload, **kw)


def corpus_frames():
    """(name, frame bytes, expect_fast) triples covering every decoder
    gate: plain v4/v6 TCP/UDP are fast; everything the 68-byte
    fixed-offset decode cannot prove simple must take the slow path."""
    return [
        ("tcp4", _tcp4(), True),
        ("tcp4_syn", _tcp4(payload=b"", flags=0x02), True),
        ("udp4", _udp4(), True),
        ("tcp6", _tcp6(), True),
        ("udp6", _udp6(), True),
        ("tcp4_matchport", _tcp4(dst_port=8080), True),
        ("vlan_tcp4", _vlan(_tcp4()), False),
        ("qinq_tcp4", _vlan(_vlan(_tcp4()), tpid=ETHERTYPE_QINQ), False),
        ("ipv4_options_tcp", _ipv4_with_options(_tcp4()), False),
        ("ipv4_fragment", _ipv4_fragment(_tcp4()), False),
        ("ipv6_hopopts_tcp", _ipv6_with_hopopts(_tcp6()), False),
        ("icmp_echo", build_icmp_echo("10.0.0.1", "10.0.0.2"), False),
        ("trunc_eth", _tcp4()[:10], False),
        ("trunc_ipv4", _tcp4()[:14 + 12], False),
        ("trunc_tcp", _tcp4()[:14 + 20 + 8], False),
        ("trunc_ipv6", _tcp6()[:14 + 20], False),
        ("empty", b"", False),
    ]


def corpus_mbufs():
    return [Mbuf(frame, 0.001 * (i + 1), 0)
            for i, (_name, frame, _fast) in enumerate(corpus_frames())]


FILTERS = [
    "tcp",
    "udp",
    "ipv4",
    "ipv6",
    "tcp.dst_port = 443",
    "ipv4.src_addr in 10.0.0.0/8 and tcp",
    "ipv6 and udp.dst_port = 53",
    "udp or tcp.dst_port = 8080",
]


class TestColumnarDecodeParity:
    def test_fast_mask_matches_expectations(self):
        mbufs = corpus_mbufs()
        cols = decode_mbufs(mbufs)
        got = {name: cols.fast[i]
               for i, (name, _f, _e) in enumerate(corpus_frames())}
        want = {name: expect for name, _f, expect in corpus_frames()}
        assert got == want

    def test_fast_row_five_tuples_match_parse_stack(self):
        mbufs = corpus_mbufs()
        cols = decode_mbufs(mbufs)
        for i, mbuf in enumerate(mbufs):
            if not cols.fast[i]:
                continue
            stack = parse_stack(Mbuf(bytes(mbuf.data)))
            ip = stack.ipv4 if stack.ipv4 is not None else stack.ipv6
            transport = stack.tcp if stack.tcp is not None else stack.udp
            assert cols.src_ip[i] == ip.src_addr().packed
            assert cols.dst_ip[i] == ip.dst_addr().packed
            assert cols.src_port[i] == transport.src_port()
            assert cols.dst_port[i] == transport.dst_port()
            assert cols.payload_len[i] == stack.l4_payload_len()
            assert cols.wire[i] == len(mbuf.data)
            if stack.tcp is not None:
                assert cols.proto[i] == 6
                assert cols.tcp_flags[i] == stack.tcp.flags_raw()
                assert cols.tcp_seq[i] == stack.tcp.seq_no()
            else:
                assert cols.proto[i] == 17


class TestColumnarFilterParity:
    @pytest.mark.parametrize("mode", ["codegen", "interp"])
    @pytest.mark.parametrize("filter_str", FILTERS)
    def test_batch_verdicts_match_scalar(self, filter_str, mode):
        compiled = compile_filter(filter_str, mode=mode)
        batch = compiled.packet_filter_batch
        assert batch is not None, \
            f"{filter_str!r} should be batch-expressible"
        mbufs = corpus_mbufs()
        cols = decode_mbufs(mbufs)
        verdicts = batch(cols)
        names = [name for name, _f, _e in corpus_frames()]
        for i, mbuf in enumerate(mbufs):
            if not cols.fast[i]:
                continue  # slow rows always re-run the scalar filter
            result = compiled.packet_filter(Mbuf(bytes(mbuf.data)))
            want = (encode_verdict(result.node, result.terminal)
                    if result.matched else NO_MATCH)
            assert verdicts[i] == want, \
                f"{filter_str!r} [{mode}] disagrees on {names[i]}"


class TestColumnarEndToEnd:
    def _canonical(self, columnar, filter_mode="codegen",
                   filter_str="tcp", datatype="connection"):
        # Replicate the corpus so batches mix fast and slow rows and
        # connections see multiple packets.
        traffic = []
        ts = 0.0
        for rep in range(40):
            for name, frame, _fast in corpus_frames():
                ts += 13e-6
                traffic.append(Mbuf(frame, ts, 0))
        runtime = Runtime(
            RuntimeConfig(cores=2, columnar=columnar,
                          filter_mode=filter_mode),
            filter_str=filter_str, datatype=datatype, callback=None)
        report = runtime.run(iter(traffic))
        return json.dumps(report.stats.to_dict(), sort_keys=True)

    @pytest.mark.parametrize("mode", ["codegen", "interp"])
    def test_aggregate_stats_identical(self, mode):
        scalar = self._canonical(columnar=False, filter_mode=mode)
        columnar = self._canonical(columnar=True, filter_mode=mode)
        assert columnar == scalar

    def test_aggregate_stats_identical_ipv6_filter(self):
        scalar = self._canonical(columnar=False, filter_str="ipv6 and tcp")
        columnar = self._canonical(columnar=True, filter_str="ipv6 and tcp")
        assert columnar == scalar
