"""Burst span tracing, flight recorder, and hot-path profiler.

The contracts under test (ISSUE 7):

- span trees record exact per-burst stage deltas via ledger/funnel
  snapshots at burst boundaries;
- the trace stream, profiler, and flight dumps are **deterministic**:
  identical sequential-vs-parallel at 1/2/4 workers, because both
  backends flush per-queue pending lists at the same boundaries and
  sampling is by per-core burst ordinal;
- span recording never perturbs the report: ``AggregateStats`` is
  byte-identical with spans on and off (span data rides
  ``RuntimeReport.spans``, never the stats);
- the flight recorder dumps its ring with the triggering event on
  overload rung escalation, callback quarantine, and worker
  crash/restart;
- cycle-histogram totals equal ledger invocation counts on the scalar
  and columnar paths (the batched stages settle their buckets through
  ``observe_batched``).
"""

import json

import pytest

from repro import Runtime, RuntimeConfig
from repro.core.cycles import CostModel, CycleLedger, Stage
from repro.core.stats import CoreStats
from repro.errors import ConfigError
from repro.telemetry.spans import (
    NULL_SPAN_RECORDER,
    SpanRecorder,
    SpanReport,
    build_span_report,
    chrome_trace_events,
    tree_public,
)
from repro.traffic import CampusTrafficGenerator


def _campus(seed=21, duration=0.4, gbps=0.1):
    return list(CampusTrafficGenerator(seed=seed).packets(
        duration=duration, gbps=gbps))


def _run(traffic, parallel, cores=4, span_sample=1, flight_depth=4,
         filter_str="tcp", datatype="connection", **config_kwargs):
    config = RuntimeConfig(
        cores=cores, parallel=parallel, span_sample=span_sample,
        flight_recorder_depth=flight_depth, **config_kwargs)
    runtime = Runtime(config, filter_str=filter_str, datatype=datatype,
                      callback=None)
    return runtime.run(iter(traffic))


# ---------------------------------------------------------------------------
# recorder unit behavior
# ---------------------------------------------------------------------------
class TestSpanRecorder:
    def _stats(self):
        return CoreStats(CostModel())

    def test_burst_tree_records_stage_deltas(self):
        stats = self._stats()
        rec = SpanRecorder(0, sample_every=1, flight_depth=4)
        token = rec.start(stats)
        stats.packets += 10
        stats.pf_packets += 7
        stats.callbacks += 2
        stats.ledger.charge(Stage.PARSING, 3)
        rec.finish(stats, 1.5, token)
        assert rec.bursts == 1 and rec.bursts_sampled == 1
        (tree,) = rec.trees
        assert tree["packets_in"] == 10
        assert tree["out"]["packet_filter"] == 7
        assert tree["out"]["callback"] == 2
        assert tree["ts"] == 1.5
        parsing = [row for row in tree["stages"]
                   if row[0] == Stage.PARSING.value]
        assert parsing == [[Stage.PARSING.value, 3,
                            3 * CostModel().parsing]]

    def test_sampling_cadence_is_by_burst_ordinal(self):
        stats = self._stats()
        rec = SpanRecorder(0, sample_every=3, flight_depth=0)
        for _ in range(9):
            rec.finish(stats, 0.0, rec.start(stats))
        assert rec.bursts == 9
        assert rec.bursts_sampled == 3  # bursts 0, 3, 6

    def test_trigger_dumps_ring(self):
        stats = self._stats()
        rec = SpanRecorder(2, sample_every=0, flight_depth=2)
        for _ in range(5):
            rec.finish(stats, 0.0, rec.start(stats))
        rec.trigger("overload_rung", "rung 0->1", 4.0)
        assert len(rec.dumps) == 1
        dump = rec.dumps[0]
        assert dump["trigger"]["event"] == "overload_rung"
        assert dump["trigger"]["core"] == 2
        # Ring depth 2: only the last two bursts survive.
        assert [t["seq"] for t in dump["bursts"]] == [3, 4]

    def test_tree_public_strips_volatile_fields(self):
        stats = self._stats()
        rec = SpanRecorder(0, sample_every=1, flight_depth=0)
        rec.ctx = (0, 7)
        rec.finish(stats, 0.0, rec.start(stats))
        tree = rec.trees[0]
        assert "wall_ns" in tree and tree["ctx"] == [0, 7]
        public = tree_public(tree)
        assert "wall_ns" not in public and "ctx" not in public

    def test_null_recorder_is_inert(self):
        assert NULL_SPAN_RECORDER.start(None) is None
        assert NULL_SPAN_RECORDER.finish(None, 0.0, None) is None
        assert NULL_SPAN_RECORDER.snapshot() is None

    def test_snapshot_is_json_roundtrippable(self):
        stats = self._stats()
        rec = SpanRecorder(0, sample_every=1, flight_depth=2)
        rec.finish(stats, 0.0, rec.start(stats))
        rec.trigger("parser_error", "probe", 0.1)
        snap = rec.snapshot()
        assert json.loads(json.dumps(snap)) == snap


# ---------------------------------------------------------------------------
# config validation
# ---------------------------------------------------------------------------
class TestSpanConfig:
    def test_negative_span_sample_rejected(self):
        with pytest.raises(ConfigError):
            RuntimeConfig(span_sample=-1)

    def test_negative_flight_depth_rejected(self):
        with pytest.raises(ConfigError):
            RuntimeConfig(flight_recorder_depth=-1)


# ---------------------------------------------------------------------------
# determinism: sequential vs parallel, 1/2/4 workers
# ---------------------------------------------------------------------------
class TestSpanDeterminism:
    @pytest.fixture(scope="class")
    def traffic(self):
        return _campus()

    @pytest.mark.parametrize("cores", [1, 2, 4])
    def test_ndjson_identical_across_backends(self, traffic, cores):
        seq = _run(traffic, parallel=False, cores=cores).spans
        par = _run(traffic, parallel=True, cores=cores).spans
        assert list(seq.ndjson_lines()) == list(par.ndjson_lines())

    @pytest.mark.parametrize("cores", [1, 2, 4])
    def test_flight_dump_identical_across_backends(self, traffic, cores):
        seq = _run(traffic, parallel=False, cores=cores).spans
        par = _run(traffic, parallel=True, cores=cores).spans
        assert json.dumps(seq.flight_dump(), sort_keys=True) == \
            json.dumps(par.flight_dump(), sort_keys=True)

    def test_tree_packet_counts_match_funnel(self, traffic):
        report = _run(traffic, parallel=False, cores=2)
        trees = report.spans.trees()
        assert trees
        assert sum(t["packets_in"] for t in trees) == \
            report.stats.processed_packets
        # End-of-run drain delivers expirations outside any burst, so
        # burst-attributed callbacks are a lower bound.
        in_bursts = sum(t["out"]["callback"] for t in trees)
        assert 0 < in_bursts <= report.stats.callbacks

    def test_stats_byte_identical_spans_on_vs_off(self, traffic):
        on = _run(traffic, parallel=False).stats
        config = RuntimeConfig(cores=4, parallel=False)
        off = Runtime(config, filter_str="tcp", datatype="connection",
                      callback=None).run(iter(traffic)).stats
        assert json.dumps(on.to_dict(), sort_keys=True) == \
            json.dumps(off.to_dict(), sort_keys=True)

    def test_spans_none_when_disabled(self, traffic):
        config = RuntimeConfig(cores=2, parallel=False)
        report = Runtime(config, filter_str="tcp", datatype="connection",
                         callback=None).run(iter(traffic))
        assert report.spans is None

    def test_ipc_ctx_stitches_worker_bursts(self, traffic):
        """Parallel burst trees carry the feeder's (queue, seq) span
        context; sequential ones carry None — and the context is
        excluded from deterministic views (tree_public)."""
        par = _run(traffic, parallel=True, cores=2).spans
        ctxs = [t["ctx"] for snap in par.cores for t in snap["trees"]]
        assert any(c is not None for c in ctxs)
        for snap in par.cores:
            for tree in snap["trees"]:
                if tree["ctx"] is not None:
                    assert tree["ctx"][0] == snap["core"]


# ---------------------------------------------------------------------------
# profiler
# ---------------------------------------------------------------------------
class TestProfiler:
    @pytest.fixture(scope="class")
    def report(self):
        return _run(_campus(), parallel=False, cores=2)

    def test_profile_totals_match_ledger(self, report):
        prof = report.spans.profile()
        # span_sample=1: every burst sampled, so profiled invocations
        # equal the run's stage invocations for per-packet stages.
        assert prof["invocations"][Stage.PARSING.value] == \
            report.stats.stage_invocations[Stage.PARSING]
        assert prof["cycles"][Stage.PARSING.value] == \
            pytest.approx(report.stats.stage_cycles[Stage.PARSING])

    def test_hist_counts_bursts(self, report):
        prof = report.spans.profile()
        sampled = sum(s["bursts_sampled"] for s in report.spans.cores)
        for name, counts in prof["hist"].items():
            assert 0 <= sum(counts) <= sampled

    def test_hottest_attribution_table(self, report):
        hottest = report.spans.hottest()
        assert hottest
        top = hottest[0]
        assert set(top) == {"stage", "node", "packets", "cycles"}
        cycles = [row["cycles"] for row in hottest]
        assert cycles == sorted(cycles, reverse=True)

    def test_to_dict_is_json_roundtrippable(self, report):
        d = report.spans.to_dict()
        assert json.loads(json.dumps(d)) == d


# ---------------------------------------------------------------------------
# Chrome trace export
# ---------------------------------------------------------------------------
class TestChromeTrace:
    def test_trace_has_all_workers_under_one_pid(self):
        report = _run(_campus(), parallel=True, cores=4)
        trace = report.spans.chrome_trace()
        events = trace["traceEvents"]
        assert {e["pid"] for e in events} == {0}
        thread_names = {e["tid"]: e["args"]["name"] for e in events
                        if e["ph"] == "M" and e["name"] == "thread_name"}
        assert set(thread_names) == {0, 1, 2, 3}
        burst_tids = {e["tid"] for e in events
                      if e["ph"] == "X" and e["name"] == "burst"}
        assert burst_tids == {0, 1, 2, 3}

    def test_stage_spans_nest_inside_burst(self):
        report = _run(_campus(duration=0.2), parallel=False, cores=1)
        events = chrome_trace_events(report.spans)
        bursts = [e for e in events
                  if e["ph"] == "X" and e["name"] == "burst"]
        stages = [e for e in events if e.get("cat") == "stage"]
        assert bursts and stages
        for burst in bursts:
            inside = [s for s in stages
                      if burst["ts"] - 1e-6 <= s["ts"]
                      and s["ts"] + s["dur"]
                      <= burst["ts"] + burst["dur"] + 1e-6]
            assert inside, "burst with no nested stage spans"

    def test_trace_is_valid_json(self, tmp_path):
        report = _run(_campus(duration=0.2), parallel=False, cores=2)
        from repro.telemetry.export import write_chrome_trace
        path = tmp_path / "trace.json"
        n = write_chrome_trace(path, report.spans)
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == n > 0


# ---------------------------------------------------------------------------
# flight recorder triggers (the ISSUE acceptance scenario)
# ---------------------------------------------------------------------------
class TestFlightRecorder:
    def test_worker_crash_produces_flight_dump(self):
        """Supervised run with an injected worker crash: the dump must
        contain the triggering event and at least one complete burst
        span tree per surviving core."""
        from repro.resilience import FaultPlan
        traffic = _campus(seed=7, duration=0.3)
        plan = FaultPlan.from_json(json.dumps({
            "seed": 1,
            "faults": [{"kind": "worker_crash", "core": 1,
                        "at_batch": 1}],
        }))
        config = RuntimeConfig(
            cores=2, parallel=True, supervise=True, fault_plan=plan,
            parallel_batch_size=16, span_sample=1,
            flight_recorder_depth=8)
        report = Runtime(config, filter_str="tcp", datatype="connection",
                         callback=None).run(iter(traffic))
        assert report.faults.worker_restarts == 1
        flight = report.spans.flight_dump()
        events = [e["event"] for e in flight["events"]]
        assert "worker_restart" in events
        restart_dumps = [d for d in flight["dumps"]
                         if d["trigger"]["event"] == "worker_restart"]
        assert restart_dumps and restart_dumps[0]["bursts"]
        for core in ("0", "1"):
            assert flight["rings"][core], f"core {core} has no bursts"
        for tree in restart_dumps[0]["bursts"]:
            assert tree["stages"], "incomplete burst tree in dump"

    def test_overload_escalation_triggers_dump(self):
        """A rung escalation on the overload ladder dumps the ring."""
        from repro.traffic import BurstTrafficGenerator
        traffic = list(BurstTrafficGenerator(seed=1).packets(
            duration=1.0, gbps=0.05))
        config = RuntimeConfig(
            cores=2, overload_policy="ladder",
            overload_target_lag=0.02,
            # ~10ms of virtual work per stateful packet: the burst
            # window overloads a core (same recipe as test_overload).
            cost_model=CostModel(conn_track=3e7), span_sample=1,
            flight_recorder_depth=4)
        report = Runtime(config, filter_str="tcp", datatype="connection",
                         callback=None).run(iter(traffic))
        assert report.overload is not None
        assert report.overload.max_rung_seen > 0
        flight = report.spans.flight_dump()
        rung_events = [e for e in flight["events"]
                       if e["event"] == "overload_rung"]
        assert rung_events
        assert any(d["trigger"]["event"] == "overload_rung"
                   for d in flight["dumps"])

    def test_callback_quarantine_triggers_event(self):
        def bad_callback(conn):
            raise RuntimeError("boom")

        config = RuntimeConfig(
            cores=1, callback_error_policy="isolate",
            callback_error_budget=2, span_sample=1,
            flight_recorder_depth=4)
        report = Runtime(config, filter_str="tcp", datatype="connection",
                         callback=bad_callback).run(
            iter(_campus(duration=0.3)))
        assert report.stats.quarantined_cores >= 1
        events = [e["event"] for e in report.spans.flight_dump()["events"]]
        assert "callback_quarantine" in events

    def test_flight_dump_carries_nic_context(self):
        report = _run(_campus(duration=0.2), parallel=False, cores=2)
        flight = report.spans.flight_dump()
        assert flight["nic"]
        assert "received_packets" in flight["nic"][0]


# ---------------------------------------------------------------------------
# span context on the IPC wire
# ---------------------------------------------------------------------------
class TestPackedBatchCtx:
    def test_trace_ctx_survives_pickle(self):
        import pickle

        from repro.packet.batch import PackedBatch
        from repro.packet.mbuf import Mbuf
        batch = PackedBatch.pack(
            [Mbuf(b"\x00" * 60, 0.5, 0)], queue=1)
        batch.trace_ctx = (1, 42)
        clone = pickle.loads(pickle.dumps(batch))
        assert clone.trace_ctx == (1, 42)
        assert clone.queue == 1 and len(clone) == 1

    def test_none_ctx_keeps_wire_format(self):
        """trace_ctx=None pickles to the pre-span 6-field wire tuple,
        so span-off IPC pays nothing."""
        from repro.packet.batch import PackedBatch
        from repro.packet.mbuf import Mbuf
        batch = PackedBatch.pack([Mbuf(b"\x00" * 60, 0.5, 0)])
        assert len(batch.__reduce__()[1]) == 6
        batch.trace_ctx = (0, 0)
        assert len(batch.__reduce__()[1]) == 7


# ---------------------------------------------------------------------------
# cycle-histogram / ledger parity (satellite: both hot paths)
# ---------------------------------------------------------------------------
class TestCycleHistParity:
    @pytest.mark.parametrize("columnar", [True, False])
    def test_parity_holds_on_both_paths(self, columnar):
        from repro.telemetry.export import check_cycle_hist
        config = RuntimeConfig(cores=2, telemetry=True,
                               columnar=columnar)
        runtime = Runtime(config, filter_str="tcp",
                          datatype="connection", callback=None)
        report = runtime.run(iter(_campus(duration=0.3)))
        for pipeline in runtime.pipelines:
            pipeline.stats.ledger.check_hist_parity()
        check_cycle_hist(report.stats)
        assert report.stats.processed_packets > 0

    def test_observe_batched_settles_constant_stages(self):
        ledger = CycleLedger(CostModel(), record_hist=True)
        ledger.invocations[Stage.CAPTURE] = 100
        ledger.observe_batched(Stage.CAPTURE, 100)
        ledger.check_hist_parity()
        assert sum(ledger.hist[Stage.CAPTURE]) == 100

    def test_parity_assertion_fires_on_mismatch(self):
        ledger = CycleLedger(CostModel(), record_hist=True)
        ledger.invocations[Stage.CAPTURE] = 5  # no hist observations
        with pytest.raises(AssertionError):
            ledger.check_hist_parity()


# ---------------------------------------------------------------------------
# merged report assembly
# ---------------------------------------------------------------------------
class TestBuildSpanReport:
    def test_returns_none_without_snapshots(self):
        assert build_span_report([CoreStats(CostModel())],
                                 None, 3.0e9) is None

    def test_parent_events_synthesize_dumps(self):
        stats = CoreStats(CostModel())
        rec = SpanRecorder(0, sample_every=1, flight_depth=2)
        rec.finish(stats, 0.0, rec.start(stats))
        stats.spans = rec.snapshot()
        parent = [{"event": "worker_restart", "core": 0,
                   "detail": "restart 1, replaying 2 batches",
                   "ts": -1.0}]
        report = build_span_report([stats], parent, 3.0e9)
        assert [e["event"] for e in report.events] == ["worker_restart"]
        dump = report.flight_dump()["dumps"][0]
        assert dump["trigger"]["event"] == "worker_restart"
        assert len(dump["bursts"]) == 1
