"""Tolerant pcap reading: a capture truncated by a crash or full disk
loses only its ragged final record, not the whole analysis.

Strict mode (the default) keeps the old raise-on-truncation behavior;
global-header and magic/linktype damage always raises in both modes (a
file whose framing is wrong is not a pcap at all).
"""

import warnings

import pytest

from repro.packet.mbuf import Mbuf
from repro.traffic.pcap import (
    PcapFormatError,
    PcapReadStats,
    iter_pcap,
    read_pcap,
    write_pcap,
)


@pytest.fixture
def capture(tmp_path):
    """A small valid capture plus its on-disk size."""
    path = tmp_path / "ok.pcap"
    mbufs = [Mbuf(bytes([i]) * (40 + i), timestamp=float(i))
             for i in range(8)]
    write_pcap(path, mbufs)
    return path, mbufs


def _truncated(tmp_path, source, cut: int):
    data = source.read_bytes()
    out = tmp_path / f"cut-{cut}.pcap"
    out.write_bytes(data[:len(data) - cut])
    return out


class TestStrict:
    def test_round_trip_intact(self, capture):
        path, mbufs = capture
        got = read_pcap(path)
        assert [m.data for m in got] == [m.data for m in mbufs]

    def test_truncated_body_raises(self, capture, tmp_path):
        path, _ = capture
        with pytest.raises(PcapFormatError, match="truncated packet body"):
            read_pcap(_truncated(tmp_path, path, 3))

    def test_truncated_header_raises(self, capture, tmp_path):
        path, mbufs = capture
        # Cut into the final record's 16-byte header: drop the whole
        # final body plus part of its header.
        cut = len(mbufs[-1].data) + 5
        with pytest.raises(PcapFormatError,
                           match="truncated packet header"):
            read_pcap(_truncated(tmp_path, path, cut))


class TestTolerant:
    def test_truncated_body_stops_cleanly(self, capture, tmp_path):
        path, mbufs = capture
        stats = PcapReadStats()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            got = list(iter_pcap(_truncated(tmp_path, path, 3),
                                 strict=False, stats=stats))
        # Every complete record was delivered; only the ragged tail is
        # gone.
        assert [m.data for m in got] == [m.data for m in mbufs[:-1]]
        assert stats.packets == len(mbufs) - 1
        assert stats.truncated_tail == 1
        assert any("truncated mid-body" in str(w.message) for w in caught)

    def test_truncated_header_stops_cleanly(self, capture, tmp_path):
        path, mbufs = capture
        cut = len(mbufs[-1].data) + 5
        stats = PcapReadStats()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            got = list(iter_pcap(_truncated(tmp_path, path, cut),
                                 strict=False, stats=stats))
        assert len(got) == len(mbufs) - 1
        assert stats.truncated_tail == 1
        assert any("truncated mid-header" in str(w.message)
                   for w in caught)

    def test_intact_file_warns_nothing(self, capture):
        path, mbufs = capture
        stats = PcapReadStats()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            got = list(iter_pcap(path, strict=False, stats=stats))
        assert len(got) == len(mbufs)
        assert stats.packets == len(mbufs)
        assert stats.truncated_tail == 0
        assert caught == []

    def test_framing_damage_still_raises(self, capture, tmp_path):
        """Tolerant mode forgives a ragged tail, not a broken file."""
        path, _ = capture
        bad_magic = tmp_path / "bad.pcap"
        data = bytearray(path.read_bytes())
        data[0] ^= 0xFF
        bad_magic.write_bytes(bytes(data))
        with pytest.raises(PcapFormatError, match="bad magic"):
            list(iter_pcap(bad_magic, strict=False))
        stub = tmp_path / "stub.pcap"
        stub.write_bytes(path.read_bytes()[:10])
        with pytest.raises(PcapFormatError, match="global header"):
            list(iter_pcap(stub, strict=False))
