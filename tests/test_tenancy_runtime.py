"""Multi-tenant runtime determinism and tenant fault isolation.

Pins the robustness contract of :mod:`repro.tenancy`:

- **Live-reconfiguration determinism**: a run with mid-stream
  subscribe/unsubscribe events produces byte-identical per-tenant
  :class:`AggregateStats` on the sequential and parallel backends at
  1/2/4 workers, in both filter modes, and an always-present tenant's
  stats are byte-identical to a static (no-events) run.
- **Swap-window crash survival**: a supervised worker crash planned at
  an epoch bump's own batch sequence replays the bump to the restarted
  worker and leaves every tenant's stats byte-identical.
- **Tenant fault isolation**: a quarantined-callback tenant and a
  quota-shed tenant each leave their co-tenants byte-identical to runs
  without the misbehaving tenant's faults, with every suppressed
  delivery / shed packet attributed in the tenant's own loss ledger.
"""

import pytest

from repro import RuntimeConfig
from repro.errors import TenancyError
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.tenancy import ReconfigureEvent, TenantRuntime, TenantSpec
from repro.traffic import CampusTrafficGenerator


@pytest.fixture(scope="module")
def traffic():
    return list(CampusTrafficGenerator(seed=21).packets(
        duration=0.3, gbps=0.1))


def _specs():
    return [
        TenantSpec("web", "tcp.dst_port = 443", "connection"),
        TenantSpec("dns", "udp", "packet"),
        TenantSpec("late", "tcp", "connection", start=False),
    ]


def _mid_events(traffic):
    mid = traffic[len(traffic) // 2].timestamp
    return [ReconfigureEvent(mid, "drop", "dns"),
            ReconfigureEvent(mid, "add", "late")]


def _run(traffic, specs, events=(), parallel=False, cores=2,
         **config_kwargs):
    config = RuntimeConfig(cores=cores, parallel=parallel,
                           **config_kwargs)
    runtime = TenantRuntime(config, specs, events=list(events))
    report = runtime.run(iter(traffic))
    tenants = {name: stats.to_dict()
               for name, stats in runtime.aggregate_tenants(report).items()}
    return tenants, runtime, report


class TestLiveReconfigDeterminism:
    @pytest.mark.parametrize("mode", ["codegen", "interp"])
    @pytest.mark.parametrize("cores", [1, 2, 4])
    def test_backends_identical_under_midrun_swap(self, traffic, cores,
                                                  mode):
        events = _mid_events(traffic)
        seq, _, _ = _run(traffic, _specs(), events, parallel=False,
                         cores=cores, filter_mode=mode)
        par, _, _ = _run(traffic, _specs(), events, parallel=True,
                         cores=cores, filter_mode=mode)
        assert sorted(seq) == ["dns", "late", "web"]
        assert seq == par

    @pytest.mark.parametrize("mode", ["codegen", "interp"])
    def test_always_present_tenant_matches_static_run(self, traffic,
                                                      mode):
        """The tenant untouched by the swap gets byte-identical stats
        with or without the other tenants' reconfiguration."""
        static, _, _ = _run(traffic, _specs(), (), filter_mode=mode)
        live, _, _ = _run(traffic, _specs(), _mid_events(traffic),
                          filter_mode=mode)
        assert live["web"] == static["web"]
        assert "late" not in static and "late" in live

    def test_swap_lands_on_event_boundary(self, traffic):
        """The dropped tenant stops at the event and the added tenant
        starts there: their per-tenant packet counts partition the
        stream at the swap point."""
        events = _mid_events(traffic)
        tenants, runtime, report = _run(traffic, _specs(), events)
        assert runtime.table.epoch == 2
        assert runtime.table.active == ["web", "late"]
        total = tenants["web"]["processed_packets"]
        assert tenants["dns"]["processed_packets"] \
            + tenants["late"]["processed_packets"] == total
        # Every core adopted the final epoch.
        for bundle in report.core_stats.values():
            assert bundle.epoch == 2

    def test_drop_then_readd_same_tenant(self, traffic):
        """A tenant can leave and rejoin; the rejoin starts a fresh
        pipeline while the dropped incarnation drains frozen."""
        third = traffic[len(traffic) // 3].timestamp
        two_thirds = traffic[2 * len(traffic) // 3].timestamp
        events = [ReconfigureEvent(third, "drop", "dns"),
                  ReconfigureEvent(two_thirds, "add", "dns")]
        seq, runtime, _ = _run(traffic, _specs(), events)
        par, _, _ = _run(traffic, _specs(), events, parallel=True)
        assert seq == par
        assert runtime.table.active == ["web", "dns"]
        # The rejoined tenant saw the first and last thirds only.
        assert 0 < seq["dns"]["processed_packets"] \
            < seq["web"]["processed_packets"]

    def test_live_subscribe_api_prerun(self, traffic):
        """subscribe()/unsubscribe() on the runtime object publish new
        epochs equivalent to declaring the same set statically."""
        specs = _specs()
        runtime = TenantRuntime(RuntimeConfig(cores=2), specs[:2])
        assert runtime.subscribe(specs[2].with_(start=True)) == 1
        assert runtime.unsubscribe("dns") == 2
        report = runtime.run(iter(traffic))
        got = {n: s.to_dict()
               for n, s in runtime.aggregate_tenants(report).items()}
        # Same tenant *universe* (dns stays known-but-dormant): the
        # union hardware plane is part of what makes runs comparable.
        config = RuntimeConfig(cores=2)
        static = TenantRuntime(config, [
            TenantSpec("web", "tcp.dst_port = 443", "connection"),
            TenantSpec("late", "tcp", "connection"),
            TenantSpec("dns", "udp", "packet", start=False),
        ])
        want = {n: s.to_dict() for n, s in static.aggregate_tenants(
            static.run(iter(traffic))).items()}
        assert got["web"] == want["web"]
        assert got["late"] == want["late"]

    def test_double_subscribe_rejected(self):
        runtime = TenantRuntime(RuntimeConfig(cores=1), _specs()[:1])
        with pytest.raises(TenancyError):
            runtime.subscribe(TenantSpec("web", "tcp"))

    def test_crash_during_swap_window(self, traffic):
        """A worker crash planned at the epoch bump's own sequence
        number: the supervisor replays the bump to the fresh worker and
        every tenant's stats stay byte-identical."""
        # Events at t=0 fire before any packet, so the two bump batches
        # are seqs 0 and 1 on every core; crashing core 1 at seq 1 puts
        # the failure inside the swap window with nothing acked yet.
        events = [ReconfigureEvent(0.0, "drop", "dns"),
                  ReconfigureEvent(0.0, "add", "late")]
        plan = FaultPlan(seed=7, faults=(
            FaultSpec(kind="worker_crash", core=1, at_batch=1),))
        base, _, _ = _run(traffic, _specs(), events, parallel=True)
        crashed, _, report = _run(traffic, _specs(), events,
                                  parallel=True, fault_plan=plan,
                                  supervise=True)
        assert report.faults.worker_restarts == 1
        assert base == crashed


class TestTenantFaultIsolation:
    def test_quarantined_tenant_leaves_others_identical(self, traffic):
        """A tenant whose callback errors on every delivery quarantines
        after its budget — in its own pipelines only. Co-tenants are
        byte-identical to a run where that tenant is healthy."""
        budget = 2
        noisy_plan = FaultPlan(seed=3, faults=(
            FaultSpec(kind="callback_error", at_ordinal=0, every=1),))
        healthy = [
            TenantSpec("web", "tcp.dst_port = 443", "connection"),
            TenantSpec("noisy", "tcp", "connection"),
        ]
        faulty = [
            healthy[0],
            healthy[1].with_(fault_plan=noisy_plan,
                             callback_error_policy="isolate",
                             callback_error_budget=budget),
        ]
        base, _, _ = _run(traffic, healthy, cores=2)
        got, _, report = _run(traffic, faulty, cores=2)
        assert got["web"] == base["web"]
        assert got["noisy"]["callback_errors"] == 2 * budget  # per core
        assert got["noisy"]["quarantined_cores"] == 2
        assert base["noisy"]["callback_errors"] == 0
        # Deliveries are still counted for the quarantined tenant.
        assert got["noisy"]["callbacks"] == base["noisy"]["callbacks"]

    @pytest.mark.parametrize("parallel", [False, True])
    def test_quota_shed_tenant_isolated(self, traffic, parallel):
        """A tiny ingress quota sheds the tenant's own rows (attributed
        to the tenant_quota funnel layer) and leaves the co-tenant
        byte-identical to the unmetered run."""
        unmetered = [
            TenantSpec("web", "tcp.dst_port = 443", "connection"),
            TenantSpec("hog", "", "packet"),
        ]
        metered = [unmetered[0], unmetered[1].with_(quota_mbps=0.05)]
        base, _, _ = _run(traffic, unmetered, parallel=parallel)
        got, runtime, report = _run(traffic, metered, parallel=parallel)
        assert got["web"] == base["web"]
        ledgers = runtime.tenant_ledgers(report)
        hog = ledgers["hog"]
        assert hog.layer_packets.get("tenant_quota", 0) > 0
        assert hog.packets_seen == hog.packets_analyzed \
            + hog.packets_shed
        # Shed rows never reached the tenant pipeline.
        assert got["hog"]["processed_packets"] \
            + hog.layer_packets["tenant_quota"] \
            == base["hog"]["processed_packets"]
        assert "web" not in ledgers or \
            ledgers["web"].packets_shed == 0

    def test_pressure_downgrades_heaviest_tenant_first(self, traffic):
        """Under an aggregate pressure budget the multiplexer sheds the
        heaviest tenant's rows (rung 3, tenant_pressure layer) and the
        lighter tenant keeps its full feed."""
        specs = [
            TenantSpec("light", "tcp.dst_port = 443", "connection"),
            TenantSpec("heavy", "", "packet"),
        ]
        base, _, _ = _run(traffic, specs)
        got, runtime, report = _run(traffic, specs,
                                    tenancy_pressure_mbps=0.1)
        ledgers = runtime.tenant_ledgers(report)
        heavy = ledgers["heavy"]
        assert heavy.layer_packets.get("tenant_pressure", 0) > 0
        assert heavy.shed_packets[3] \
            == heavy.layer_packets["tenant_pressure"]
        assert got["light"] == base["light"]
        assert "light" not in ledgers or \
            ledgers["light"].packets_shed == 0

    def test_shed_accounting_identical_across_backends(self, traffic):
        """Quota and pressure ledgers are part of the determinism
        contract too: byte-identical between backends at a fixed
        ``config.cores`` (the quota share is per core)."""
        specs = [
            TenantSpec("web", "tcp.dst_port = 443", "connection"),
            TenantSpec("hog", "", "packet", quota_mbps=0.05),
        ]
        _, rt_seq, rep_seq = _run(traffic, specs, parallel=False,
                                  cores=4)
        _, rt_par, rep_par = _run(traffic, specs, parallel=True,
                                  cores=4)
        seq = {n: led.to_dict()
               for n, led in rt_seq.tenant_ledgers(rep_seq).items()}
        par = {n: led.to_dict()
               for n, led in rt_par.tenant_ledgers(rep_par).items()}
        assert seq == par


class TestTenantRuntimeValidation:
    def test_queued_callbacks_rejected(self):
        config = RuntimeConfig(cores=1, callback_execution="queued")
        with pytest.raises(TenancyError):
            TenantRuntime(config, _specs()[:1])

    def test_unknown_event_tenant_rejected(self):
        with pytest.raises(TenancyError):
            TenantRuntime(RuntimeConfig(cores=1), _specs()[:1],
                          events=[ReconfigureEvent(1.0, "drop", "nope")])

    def test_redundant_add_rejected(self):
        with pytest.raises(TenancyError):
            TenantRuntime(RuntimeConfig(cores=1), _specs(),
                          events=[ReconfigureEvent(1.0, "add", "web")])
