"""Tests for filter decomposition: trie, codegen, interp, hardware rules.

Includes the paper's Figure 3 example as a golden test and a hypothesis
property test that the compiled and interpreted backends agree on
arbitrary packets.
"""

import ipaddress

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filter import (
    FilterResult,
    Layer,
    compile_filter,
    connectx5_capabilities,
    expand_patterns,
    intel_e810_capabilities,
    no_offload_capabilities,
    parse_filter,
)
from repro.filter.hardware import generate_hardware_filter
from repro.filter.trie import PredicateTrie
from repro.packet import Mbuf, build_tcp_packet, build_udp_packet, parse_stack

FIG3 = "(ipv4 and tcp.port >= 100 and tls.sni ~ 'netflix') or http"


class FakeConn:
    def __init__(self, service):
        self._service = service

    def service(self):
        return self._service


class FakeSession:
    def __init__(self, data):
        self.data = data


class FakeTls:
    def __init__(self, sni=None, cipher=None, version=None):
        self._sni, self._cipher, self._version = sni, cipher, version

    def sni(self):
        return self._sni

    def cipher(self):
        return self._cipher

    def version(self):
        return self._version

    def client_version(self):
        return None


class TestTrie:
    def test_fig3_structure(self):
        trie = PredicateTrie(expand_patterns(parse_filter(FIG3)))
        # One packet path per paper: eth-ipv4-tcp-(port>=100)-tls-sni and
        # the http branches under ipv4/tcp and ipv6/tcp.
        layers = {n.id: n.layer for n in trie.nodes() if n.pred}
        terminals = [n.id for n in trie.nodes() if n.terminal]
        assert sorted(terminals) == [6, 7, 10]
        assert layers[5] is Layer.CONNECTION
        assert layers[6] is Layer.SESSION

    def test_single_parent(self):
        trie = PredicateTrie(expand_patterns(parse_filter(FIG3)))
        for node in trie.nodes():
            if node.pred is not None:
                assert node in node.parent.children

    def test_subsumption_pruning(self):
        # 'http' alone subsumes 'http.user_agent'; deeper branch pruned.
        trie = PredicateTrie(expand_patterns(
            parse_filter("http or (http and http.user_agent ~ 'Firefox')")
        ))
        assert not any(n.layer is Layer.SESSION for n in trie.nodes() if n.pred)

    def test_report_nodes_fig3(self):
        trie = PredicateTrie(expand_patterns(parse_filter(FIG3)))
        report_ids = {n.id for n in trie.packet_report_nodes()}
        # tcp under ipv4 (http prefix), tcp.port>=100, tcp under ipv6.
        assert report_ids == {3, 4, 9}

    def test_connection_candidates_include_ancestor_branches(self):
        trie = PredicateTrie(expand_patterns(parse_filter(FIG3)))
        node4 = trie.node(4)
        protos = [c.pred.protocol for c in trie.connection_candidates(node4)]
        # The correctness fix over Figure 3: both http (from ancestor
        # node 3) and tls (from node 4) are live after matching node 4.
        assert set(protos) == {"http", "tls"}


class TestPacketFilterBothModes:
    @pytest.fixture(params=["codegen", "interp"])
    def fig3(self, request):
        return compile_filter(FIG3, mode=request.param)

    def test_high_port_tcp(self, fig3):
        mbuf = Mbuf(build_tcp_packet("1.1.1.1", "2.2.2.2", 40000, 443))
        assert fig3.packet_filter(mbuf) == FilterResult.match_non_terminal(4)

    def test_low_port_tcp(self, fig3):
        mbuf = Mbuf(build_tcp_packet("1.1.1.1", "2.2.2.2", 50, 80))
        assert fig3.packet_filter(mbuf) == FilterResult.match_non_terminal(3)

    def test_udp_no_match(self, fig3):
        mbuf = Mbuf(build_udp_packet("1.1.1.1", "2.2.2.2", 53, 53))
        assert fig3.packet_filter(mbuf) == FilterResult.no_match()

    def test_ipv6_tcp(self, fig3):
        mbuf = Mbuf(build_tcp_packet("2001:db8::1", "2001:db8::2", 1, 2))
        assert fig3.packet_filter(mbuf) == FilterResult.match_non_terminal(9)

    def test_garbage_frame(self, fig3):
        assert fig3.packet_filter(Mbuf(b"\x00" * 60)) == FilterResult.no_match()

    def test_short_frame(self, fig3):
        assert fig3.packet_filter(Mbuf(b"\x01")) == FilterResult.no_match()


class TestConnSessionFilters:
    @pytest.fixture(params=["codegen", "interp"])
    def fig3(self, request):
        return compile_filter(FIG3, mode=request.param)

    def test_tls_non_terminal(self, fig3):
        result = fig3.connection_filter(FakeConn("tls"), 4)
        assert result.matched and not result.terminal

    def test_http_terminal_via_ancestor(self, fig3):
        result = fig3.connection_filter(FakeConn("http"), 4)
        assert result.terminal

    def test_http_terminal_at_3(self, fig3):
        assert fig3.connection_filter(FakeConn("http"), 3).terminal

    def test_unrelated_service(self, fig3):
        assert not fig3.connection_filter(FakeConn("ssh"), 4).matched

    def test_unknown_node(self, fig3):
        assert not fig3.connection_filter(FakeConn("tls"), 999).matched

    def test_session_regex_match(self, fig3):
        conn_node = fig3.connection_filter(FakeConn("tls"), 4).node
        assert fig3.session_filter(FakeSession(FakeTls("a.netflix.com")),
                                   conn_node)
        assert not fig3.session_filter(FakeSession(FakeTls("example.com")),
                                       conn_node)

    def test_session_absent_field_no_match(self, fig3):
        conn_node = fig3.connection_filter(FakeConn("tls"), 4).node
        assert not fig3.session_filter(FakeSession(FakeTls(None)), conn_node)

    def test_session_terminal_conn_node_true(self, fig3):
        node = fig3.connection_filter(FakeConn("http"), 3).node
        assert fig3.session_filter(FakeSession(object()), node)


class TestMatchAllAndEdgeFilters:
    @pytest.mark.parametrize("mode", ["codegen", "interp"])
    def test_match_all(self, mode):
        f = compile_filter("", mode=mode)
        assert f.packet_filter(Mbuf(b"\x00" * 60)).terminal
        assert f.hardware.accept_all
        assert not f.needs_connection_layer

    @pytest.mark.parametrize("mode", ["codegen", "interp"])
    def test_pure_packet_terminal(self, mode):
        f = compile_filter("ipv4.ttl > 64", mode=mode)
        high = Mbuf(build_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2, ttl=128))
        low = Mbuf(build_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2, ttl=32))
        assert f.packet_filter(high).terminal
        assert not f.packet_filter(low).matched
        assert not f.needs_connection_layer

    @pytest.mark.parametrize("mode", ["codegen", "interp"])
    def test_addr_cidr(self, mode):
        f = compile_filter("ipv4.addr in 10.0.0.0/8", mode=mode)
        inside = Mbuf(build_tcp_packet("10.1.2.3", "2.2.2.2", 1, 2))
        reverse = Mbuf(build_tcp_packet("2.2.2.2", "10.1.2.3", 1, 2))
        outside = Mbuf(build_tcp_packet("11.1.2.3", "2.2.2.2", 1, 2))
        assert f.packet_filter(inside).matched
        assert f.packet_filter(reverse).matched  # .addr = src or dst
        assert not f.packet_filter(outside).matched

    @pytest.mark.parametrize("mode", ["codegen", "interp"])
    def test_port_range(self, mode):
        f = compile_filter("tcp.port in 8000..8999", mode=mode)
        assert f.packet_filter(
            Mbuf(build_tcp_packet("1.1.1.1", "2.2.2.2", 1, 8443))).matched
        assert not f.packet_filter(
            Mbuf(build_tcp_packet("1.1.1.1", "2.2.2.2", 1, 9000))).matched

    @pytest.mark.parametrize("mode", ["codegen", "interp"])
    def test_ne_on_present_field(self, mode):
        f = compile_filter("ipv4.ttl != 64", mode=mode)
        assert not f.packet_filter(
            Mbuf(build_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2, ttl=64))).matched
        assert f.packet_filter(
            Mbuf(build_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2, ttl=65))).matched

    def test_bronzino_netflix_filter_compiles(self):
        """The 32-predicate filter from Appendix B footnote 3."""
        text = (
            "ipv4.addr in 23.246.0.0/18 or ipv4.addr in 37.77.184.0/21 or "
            "ipv4.addr in 45.57.0.0/17 or ipv4.addr in 64.120.128.0/17 or "
            "ipv4.addr in 66.197.128.0/17 or ipv4.addr in 108.175.32.0/20 or "
            "ipv4.addr in 185.2.220.0/22 or ipv4.addr in 185.9.188.0/22 or "
            "ipv4.addr in 192.173.64.0/18 or ipv4.addr in 198.38.96.0/19 or "
            "ipv4.addr in 198.45.48.0/20 or ipv4.addr in 208.75.79.0/24 or "
            "ipv6.addr in 2620:10c:7000::/44 or ipv6.addr in 2a00:86c0::/32 or "
            "tls.sni ~ 'netflix.com' or tls.sni ~ 'nflxvideo.net' or "
            "tls.sni ~ 'nflximg.net' or tls.sni ~ 'nflxext.com' or "
            "tls.sni ~ 'nflximg.com' or tls.sni ~ 'nflxso.net'"
        )
        f = compile_filter(text)
        inside = Mbuf(build_tcp_packet("23.246.1.1", "2.2.2.2", 1, 443))
        assert f.packet_filter(inside).terminal
        assert f.needs_session_layer


class TestHardwareFilter:
    def test_ge_not_offloadable_on_cx5(self):
        f = compile_filter(FIG3)
        descriptions = f.hardware.describe()
        # The >=100 item is dropped; rules are protocol-chain only.
        assert "ETH-IPV4-TCP -> RSS" in descriptions
        assert "ETH-IPV6-TCP -> RSS" in descriptions
        assert "ELSE -> DROP" in descriptions

    def test_port_eq_offloadable(self):
        f = compile_filter("tcp.port = 443 and ipv4")
        rule = f.hardware.rules[0]
        assert any("tcp.port = 443" in r for r in f.hardware.describe())
        match = parse_stack(Mbuf(build_tcp_packet("1.1.1.1", "2.2.2.2", 1, 443)))
        miss = parse_stack(Mbuf(build_tcp_packet("1.1.1.1", "2.2.2.2", 1, 80)))
        assert rule.matches(match)
        assert not rule.matches(miss)

    def test_admits_drops_out_of_scope(self):
        f = compile_filter("tcp.port = 443 and ipv4")
        https = parse_stack(Mbuf(build_tcp_packet("1.1.1.1", "2.2.2.2", 1, 443)))
        dns = parse_stack(Mbuf(build_udp_packet("1.1.1.1", "2.2.2.2", 53, 53)))
        assert f.hardware.admits(https)
        assert not f.hardware.admits(dns)

    def test_range_offloadable_on_e810_only(self):
        patterns = expand_patterns(parse_filter("tcp.port in 8000..8999"))
        cx5 = generate_hardware_filter(patterns, connectx5_capabilities())
        e810 = generate_hardware_filter(patterns, intel_e810_capabilities())
        assert not any("in" in d for d in cx5.describe())
        assert any("8000..8999" in d for d in e810.describe())

    def test_no_offload_profile_accepts_all(self):
        f = compile_filter(FIG3, nic=no_offload_capabilities())
        assert f.hardware.accept_all

    def test_match_all_accepts_all(self):
        assert compile_filter("").hardware.accept_all

    def test_rules_at_least_as_broad(self):
        """Hardware never drops a packet the software filter would match."""
        f = compile_filter(FIG3)
        frames = [
            build_tcp_packet("1.1.1.1", "2.2.2.2", 40000, 443),
            build_tcp_packet("1.1.1.1", "2.2.2.2", 50, 80),
            build_tcp_packet("2001:db8::1", "2001:db8::2", 1, 2),
            build_udp_packet("1.1.1.1", "2.2.2.2", 53, 53),
        ]
        for frame in frames:
            mbuf = Mbuf(frame)
            if f.packet_filter(mbuf).matched:
                assert f.hardware.admits(parse_stack(mbuf))


# ---------------------------------------------------------------------------
# Property test: compiled and interpreted backends always agree.
# ---------------------------------------------------------------------------

_FILTERS = [
    FIG3,
    "",
    "ipv4",
    "tcp.port = 443",
    "tcp.port in 100..200 and ipv4.ttl > 32",
    "ipv4.addr in 10.0.0.0/8 or tcp.port = 53",
    "udp and ipv6",
    "tls or ssh or dns",
    "http.user_agent ~ 'Firefox' or (udp.port = 53 and ipv4)",
]


@st.composite
def packets(draw):
    v6 = draw(st.booleans())
    if v6:
        src = str(ipaddress.IPv6Address(draw(st.integers(0, 2 ** 128 - 1))))
        dst = str(ipaddress.IPv6Address(draw(st.integers(0, 2 ** 128 - 1))))
    else:
        src = str(ipaddress.IPv4Address(draw(st.integers(0, 2 ** 32 - 1))))
        dst = str(ipaddress.IPv4Address(draw(st.integers(0, 2 ** 32 - 1))))
    sport = draw(st.integers(0, 65535))
    dport = draw(st.integers(0, 65535))
    ttl = draw(st.integers(1, 255))
    tcp = draw(st.booleans())
    payload = draw(st.binary(max_size=64))
    if tcp:
        return build_tcp_packet(src, dst, sport, dport, payload, ttl=ttl)
    return build_udp_packet(src, dst, sport, dport, payload, ttl=ttl)


@settings(max_examples=60, deadline=None)
@given(data=st.data(), frame=packets())
def test_codegen_interp_equivalence(data, frame):
    text = data.draw(st.sampled_from(_FILTERS))
    compiled = _get_filter(text, "codegen")
    interp = _get_filter(text, "interp")
    mbuf = Mbuf(frame)
    assert compiled.packet_filter(mbuf) == interp.packet_filter(mbuf)


_CACHE = {}


def _get_filter(text, mode):
    key = (text, mode)
    if key not in _CACHE:
        _CACHE[key] = compile_filter(text, mode=mode)
    return _CACHE[key]
