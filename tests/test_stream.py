"""Tests for lazy and buffered stream reassembly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.packet import Mbuf, TcpFlags
from repro.stream import (
    BufferedReassembler,
    L4Pdu,
    LazyReassembler,
    StreamSegment,
)
from repro.stream.reassembly import seq_diff


def pdu(seq, payload=b"", flags=0, from_orig=True, ts=0.0):
    return L4Pdu(
        mbuf=Mbuf(b"\x00" * 54 + payload, timestamp=ts),
        payload=payload,
        seq=seq,
        flags=flags,
        from_orig=from_orig,
        timestamp=ts,
    )


def collect(segments):
    return b"".join(s.payload for s in segments)


class TestSeqDiff:
    def test_basic(self):
        assert seq_diff(10, 5) == 5
        assert seq_diff(5, 10) == -5

    def test_wraparound(self):
        assert seq_diff(5, 0xFFFFFFFF) == 6
        assert seq_diff(0xFFFFFFFF, 5) == -6


@pytest.mark.parametrize("cls", [LazyReassembler, BufferedReassembler])
class TestReassemblyCommon:
    def test_in_order_passthrough(self, cls):
        r = cls()
        out = []
        out += r.push(pdu(100, b"hello "))
        out += r.push(pdu(106, b"world"))
        assert collect(out) == b"hello world"
        assert r.ooo_events == 0
        assert not r.has_hole

    def test_simple_reorder(self, cls):
        r = cls()
        r.push(pdu(99, flags=int(TcpFlags.SYN)))  # anchor: expect 100
        assert collect(r.push(pdu(106, b"world"))) == b""
        assert r.has_hole
        out = r.push(pdu(100, b"hello "))
        assert collect(out) == b"hello world"
        assert not r.has_hole
        assert r.ooo_events == 1

    def test_syn_consumes_sequence_number(self, cls):
        r = cls()
        r.push(pdu(99, flags=int(TcpFlags.SYN)))
        out = r.push(pdu(100, b"data"))
        assert collect(out) == b"data"

    def test_duplicate_segment_dropped(self, cls):
        r = cls()
        r.push(pdu(100, b"abcd"))
        out = r.push(pdu(100, b"abcd"))
        assert collect(out) == b""

    def test_partial_overlap_delivers_tail(self, cls):
        r = cls()
        r.push(pdu(100, b"abcd"))
        out = r.push(pdu(102, b"cdEF"))
        assert collect(out) == b"EF"

    def test_directions_independent(self, cls):
        r = cls()
        out_o = r.push(pdu(100, b"request", from_orig=True))
        out_r = r.push(pdu(5000, b"response", from_orig=False))
        assert collect(out_o) == b"request"
        assert collect(out_r) == b"response"
        assert out_r[0].from_orig is False

    def test_seq_wraparound_stream(self, cls):
        r = cls()
        out = []
        out += r.push(pdu(0xFFFFFFFE, b"ab"))
        out += r.push(pdu(0, b"cd"))
        assert collect(out) == b"abcd"

    def test_multi_hole(self, cls):
        r = cls()
        r.push(pdu(99, flags=int(TcpFlags.SYN)))  # anchor: expect 100
        out = []
        out += r.push(pdu(106, b"cc"))
        out += r.push(pdu(104, b"bb"))
        assert collect(out) == b""
        out += r.push(pdu(100, b"aaaa"))
        assert collect(out) == b"aaaabbcc"


class TestLazySpecifics:
    def test_ring_capacity_overflow(self):
        r = LazyReassembler(capacity=3)
        r.push(pdu(999, flags=int(TcpFlags.SYN)))  # anchor: expect 1000
        for i in range(5):
            r.push(pdu(1000 + 10 * (i + 1), b"x" * 10))
        assert r.orig.overflow_drops == 2
        assert len(r.orig.held) == 3

    def test_memory_is_held_references(self):
        r = LazyReassembler()
        r.push(pdu(100, b"a" * 10))  # in-order: no memory retained
        assert r.memory_bytes == 0
        r.push(pdu(200, b"b" * 10))  # held
        assert r.memory_bytes > 0
        r.push(pdu(110, b"c" * 90))  # fills hole → flush
        assert r.memory_bytes == 0

    def test_held_segment_marked(self):
        r = LazyReassembler()
        r.push(pdu(99, flags=int(TcpFlags.SYN)))  # anchor: expect 100
        r.push(pdu(106, b"world"))
        out = r.push(pdu(100, b"hello "))
        held_flags = [s.was_held for s in out]
        assert held_flags == [False, True]

    def test_pass_through_no_copy(self):
        """In-order payload objects are forwarded, not copied."""
        r = LazyReassembler()
        payload = b"zero-copy"
        out = r.push(pdu(100, payload))
        assert out[0].payload is payload


class TestBufferedSpecifics:
    def test_copies_accounted(self):
        r = BufferedReassembler()
        r.push(pdu(100, b"a" * 100))
        r.push(pdu(200, b"b" * 50))
        assert r.copied_bytes == 150

    def test_memory_while_hole_open(self):
        r = BufferedReassembler()
        r.push(pdu(99, flags=int(TcpFlags.SYN)))  # anchor: expect 100
        r.push(pdu(200, b"b" * 50))
        assert r.memory_bytes == 50
        r.push(pdu(100, b"a" * 100))
        assert r.memory_bytes == 0

    def test_buffer_cap_drops(self):
        r = BufferedReassembler(max_buffer=100)
        r.push(pdu(99, flags=int(TcpFlags.SYN)))  # anchor: expect 100
        r.push(pdu(1000, b"x" * 80))   # held, 80 buffered
        r.push(pdu(2000, b"y" * 80))   # would exceed cap: dropped
        assert r.memory_bytes == 80


# ---------------------------------------------------------------------------
# Property: any permutation of a segmented stream reassembles exactly,
# for both implementations, as long as capacity is not exceeded.
# ---------------------------------------------------------------------------

@st.composite
def segmented_stream(draw):
    total = draw(st.integers(1, 400))
    data = bytes(draw(st.binary(min_size=total, max_size=total)))
    cuts = sorted(draw(st.sets(st.integers(1, max(1, total - 1)),
                               max_size=12)))
    bounds = [0] + [c for c in cuts if c < total] + [total]
    segments = [
        (bounds[i], data[bounds[i]:bounds[i + 1]])
        for i in range(len(bounds) - 1)
    ]
    order = draw(st.permutations(range(len(segments))))
    start_seq = draw(st.integers(0, 2 ** 32 - 1))
    return data, segments, order, start_seq


@settings(max_examples=80, deadline=None)
@given(spec=segmented_stream())
@pytest.mark.parametrize("cls", [LazyReassembler, BufferedReassembler])
def test_property_reassembles_any_order(cls, spec):
    data, segments, order, start_seq = spec
    r = cls()
    # Anchor the stream so the first-seen segment doesn't re-base it.
    anchored = r.push(pdu(start_seq, flags=int(TcpFlags.SYN)))
    out = list(anchored)
    for idx in order:
        offset, chunk = segments[idx]
        out += r.push(pdu((start_seq + 1 + offset) % (2 ** 32), chunk))
    assert collect(out) == data
    assert not r.has_hole
