"""Property-style fuzz for degraded-link scenarios (PR-8 satellite).

Seeded loss/reorder/duplication/corruption schedules drive the lazy
reassembler and the full conntrack pipeline; in every case the
reconstructed byte stream must match an in-order oracle exactly, and a
fixed impairment seed must produce byte-identical runs at 1, 2 and 4
workers on both backends.
"""

from random import Random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Runtime, RuntimeConfig
from repro.netem import GilbertElliott, ImpairmentConfig, \
    check_impairment_accounting
from repro.packet.mbuf import Mbuf
from repro.stream import L4Pdu, LazyReassembler
from repro.traffic import CampusTrafficGenerator


def _pdu(seq, payload, ts=0.0):
    return L4Pdu(mbuf=Mbuf(b"\x00" * 54 + payload, timestamp=ts),
                 payload=payload, seq=seq, flags=0x18, from_orig=True,
                 timestamp=ts)


def _schedule(seed, count=120):
    """A seeded impairment schedule over one TCP direction.

    Returns (arrivals, oracle): ``arrivals`` is the segment sequence
    as the receiver sees it — duplicates inserted, some segments
    displaced by bounded reordering, and every "lost" segment re-sent
    a few positions later (the retransmit model: unrecovered loss
    would legitimately leave a hole forever, so the schedule always
    heals). ``oracle`` is the byte stream a perfect in-order receiver
    reconstructs.
    """
    rng = Random(seed)
    segments = []
    seq = rng.randrange(1 << 32)
    for _ in range(count):
        payload = bytes(rng.randrange(256)
                        for _ in range(rng.randint(1, 9)))
        segments.append((seq, payload))
        seq = (seq + len(payload)) % (1 << 32)
    arrivals = []  # (slot, tie, seq, payload)
    tie = 0
    for i, (seg_seq, payload) in enumerate(segments):
        slot = i
        if rng.random() < 0.15:
            # Lost on the wire: only the retransmit arrives, later.
            slot = i + rng.randint(1, 12)
        elif rng.random() < 0.2:
            slot = i + rng.randint(1, 6)  # plain reordering
        arrivals.append((slot, tie, seg_seq, payload))
        tie += 1
        if rng.random() < 0.1:
            # Duplicate delivery (possibly displaced further).
            arrivals.append((slot + rng.randint(0, 4), tie, seg_seq,
                             payload))
            tie += 1
        if rng.random() < 0.08:
            # Spurious retransmit of an older segment.
            old_seq, old_payload = segments[rng.randrange(i + 1)]
            arrivals.append((slot + rng.randint(0, 4), tie, old_seq,
                             old_payload))
            tie += 1
    arrivals.sort()
    # Anchor the direction the way a real connection does (the SYN is
    # never displaced past its own data here): an empty segment at the
    # initial sequence number pins `expected` before any data arrives.
    arrivals.insert(0, (-1, -1, segments[0][0], b""))
    oracle = b"".join(payload for _, payload in segments)
    return arrivals, oracle


class TestReassemblerOracle:
    @given(seed=st.integers(0, 10 ** 6))
    @settings(max_examples=60, deadline=None)
    def test_reconstruction_matches_oracle(self, seed):
        arrivals, oracle = _schedule(seed)
        reasm = LazyReassembler(capacity=8, adaptive=True,
                                max_capacity=512)
        out = []
        for _slot, _tie, seq, payload in arrivals:
            out.extend(reasm.push(_pdu(seq, payload)))
        assert b"".join(s.payload for s in out) == oracle
        assert reasm.overflow_drops == 0
        assert not reasm.has_hole

    @given(seed=st.integers(0, 10 ** 6))
    @settings(max_examples=30, deadline=None)
    def test_discards_are_accounted(self, seed):
        """Every arrival is either delivered (possibly trimmed) or
        lands in exactly one discard counter."""
        arrivals, oracle = _schedule(seed)
        reasm = LazyReassembler(capacity=8, adaptive=True,
                                max_capacity=512)
        delivered = 0
        for _slot, _tie, seq, payload in arrivals:
            delivered += len(reasm.push(_pdu(seq, payload)))
        discarded = (reasm.dup_segments + reasm.stale_retransmits)
        # Overlap-trimmed segments still deliver their tail, so they
        # are not pure discards; pure discards + deliveries must cover
        # every arrival that was not held-then-released.
        assert delivered + discarded + reasm.overlap_segments >= \
            len(arrivals) - reasm.ooo_events
        assert b"".join([]) == b"" if delivered == 0 else True

    def test_deterministic_for_fixed_seed(self):
        a_arrivals, _ = _schedule(4242)
        b_arrivals, _ = _schedule(4242)
        assert a_arrivals == b_arrivals


def _run(impairment, *, cores=2, parallel=False, datatype="connection",
         filter_str="tcp", duration=0.15):
    config = RuntimeConfig(cores=cores, parallel=parallel,
                           impairment=impairment, ooo_adaptive=True)
    delivered = []
    runtime = Runtime(config, filter_str=filter_str, datatype=datatype,
                      callback=delivered.append)
    traffic = iter(CampusTrafficGenerator(seed=5).packets(
        duration=duration, gbps=0.05))
    report = runtime.run(traffic)
    return report, delivered


class TestConntrackUnderImpairment:
    def test_reorder_and_dup_do_not_change_sessions(self):
        """Reordering within the reassembler's reach and duplicate
        frames are absorbed: parsed sessions and delivered session
        payloads are identical to the clean run."""
        _, clean = _run(None, datatype="tls_handshake",
                        filter_str="tls")
        impair = ImpairmentConfig(seed=3, reorder_rate=0.25,
                                  reorder_depth=4, duplicate_rate=0.1)
        report, impaired = _run(impair, datatype="tls_handshake",
                                filter_str="tls")
        assert sorted(h.sni() for h in impaired) == \
            sorted(h.sni() for h in clean)
        assert len(clean) > 0
        check_impairment_accounting(report)

    def test_seeded_loss_keeps_books_balanced(self):
        impair = ImpairmentConfig(
            seed=9, burst=GilbertElliott(p=0.03, r=0.25),
            corrupt_rate=0.03, quarantine=True, duplicate_rate=0.05,
            reorder_rate=0.1)
        report, _ = _run(impair)
        ledger = report.impairment
        assert ledger.dropped_total > 0
        check_impairment_accounting(report)


FUZZ_IMPAIR = ImpairmentConfig(
    seed=21, loss_rate=0.03, burst=GilbertElliott(p=0.02, r=0.3),
    corrupt_rate=0.03, corrupt_silent=False, reorder_rate=0.1,
    reorder_depth=6, duplicate_rate=0.05, jitter_s=0.0003,
    quarantine=True, disable_threshold=4, disable_window=64,
    repair_time=0.02)


class TestWorkerCountDeterminism:
    def test_identical_at_1_2_4_workers(self):
        """The acceptance bar: a fixed impairment seed produces
        byte-identical aggregate stats and ledgers sequentially and in
        parallel at every worker count."""
        reference = None
        for cores in (1, 2, 4):
            seq, _ = _run(FUZZ_IMPAIR, cores=cores, parallel=False)
            par, _ = _run(FUZZ_IMPAIR, cores=cores, parallel=True)
            assert seq.stats.to_dict() == par.stats.to_dict(), \
                f"backends diverged at {cores} workers"
            assert seq.impairment.to_dict() == par.impairment.to_dict()
            check_impairment_accounting(seq)
            check_impairment_accounting(par)
            if reference is None:
                reference = seq.impairment.to_dict()
            else:
                assert seq.impairment.to_dict() == reference, \
                    f"impairment ledger varies with {cores} workers"

    def test_repeated_run_identical(self):
        a, _ = _run(FUZZ_IMPAIR)
        b, _ = _run(FUZZ_IMPAIR)
        assert a.stats.to_dict() == b.stats.to_dict()
        assert a.impairment.to_dict() == b.impairment.to_dict()
