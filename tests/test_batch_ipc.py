"""Zero-copy substrate tests: malformed input through the parse-once
views, flat-buffer batch round-trips, and the allocation budget of the
filtered-out fast path."""

import pickle
import struct
import tracemalloc

import pytest

from repro import Runtime, RuntimeConfig
from repro.packet import (
    ETHERTYPE_IPV4,
    Mbuf,
    PackedBatch,
    build_ethernet,
    build_tcp_packet,
    build_udp_packet,
    iter_mbufs,
    pack_stream,
    parse_stack,
)
from repro.packet.ethernet import ETHERTYPE_VLAN
from repro.traffic import CampusTrafficGenerator


def tcp_frame(**kwargs):
    defaults = dict(src="10.0.0.1", dst="192.168.1.2", src_port=12345,
                    dst_port=443, payload=b"hello")
    defaults.update(kwargs)
    return build_tcp_packet(**defaults)


class TestMalformedFrames:
    """parse_stack never raises; it records exactly the layers present."""

    def test_truncated_ethernet(self):
        stack = parse_stack(Mbuf(b"\x00" * 10))
        assert stack.eth is None
        assert stack.ip is None
        assert stack.l4_payload() == b""
        assert stack.l4_payload_len() == 0

    def test_empty_frame(self):
        stack = parse_stack(Mbuf(b""))
        assert stack.eth is None

    def test_truncated_ipv4_header(self):
        frame = tcp_frame()[:14 + 10]  # mid-IPv4 fixed header
        stack = parse_stack(Mbuf(frame))
        assert stack.eth is not None
        assert stack.ipv4 is None
        assert stack.tcp is None

    def test_truncated_tcp_header(self):
        frame = tcp_frame()
        stack = parse_stack(Mbuf(frame[:14 + 20 + 10]))  # mid-TCP
        assert stack.ipv4 is not None
        assert stack.tcp is None
        assert stack.l4_payload_len() == 0

    def test_truncated_vlan_tag_is_partial_not_error(self):
        # Frame ends inside the 802.1Q tag: the eager VLAN walk must
        # stop cleanly (historically this escaped as struct.error).
        frame = build_ethernet(b"", ETHERTYPE_VLAN) + b"\x00"
        stack = parse_stack(Mbuf(frame))
        assert stack.eth is not None
        assert stack.eth.next_protocol() is None
        assert stack.ip is None

    def test_ipv4_options_shift_transport_offset(self):
        # Rewrite IHL to 6 (one 4-byte option word) and splice the
        # option in; the TCP view must start 4 bytes later.
        frame = bytearray(tcp_frame(payload=b"PAYLOAD"))
        frame[14] = 0x46
        total_len = struct.unpack_from("!H", frame, 16)[0] + 4
        struct.pack_into("!H", frame, 16, total_len)
        frame = bytes(frame[:34]) + b"\x01\x01\x01\x00" + bytes(frame[34:])
        stack = parse_stack(Mbuf(frame))
        assert stack.ipv4 is not None
        assert stack.ipv4.header_len() == 24
        assert stack.tcp is not None
        assert stack.tcp.offset == 14 + 24
        assert stack.tcp.dst_port() == 443
        assert stack.l4_payload() == b"PAYLOAD"

    def test_vlan_offsets_through_parse_stack(self):
        # Single and double (QinQ) tags push every layer to odd
        # offsets; the cached header walk must follow them.
        inner = tcp_frame(payload=b"odd")[14:]
        single = build_ethernet(
            struct.pack("!HH", 7, ETHERTYPE_IPV4) + inner, ETHERTYPE_VLAN)
        double = build_ethernet(
            struct.pack("!HH", 8, ETHERTYPE_VLAN)
            + struct.pack("!HH", 9, ETHERTYPE_IPV4) + inner,
            ETHERTYPE_VLAN)
        for frame, hdr_len, vlans in ((single, 18, (7,)),
                                      (double, 22, (8, 9))):
            stack = parse_stack(Mbuf(frame))
            assert stack.eth.vlan_ids() == vlans
            assert stack.eth.header_len() == hdr_len
            assert stack.ipv4.offset == hdr_len
            assert stack.tcp is not None
            assert stack.l4_payload() == b"odd"

    def test_transport_claim_with_no_transport_bytes(self):
        # IPv4 says protocol=TCP but the frame stops at the IP header.
        frame = tcp_frame()[:34]
        stack = parse_stack(Mbuf(frame))
        assert stack.ipv4 is not None
        assert stack.tcp is None


class TestPackedBatch:
    def _mbufs(self):
        return [
            Mbuf(tcp_frame(payload=b"a" * 40), 1.25, 0),
            Mbuf(build_udp_packet("10.0.0.9", "8.8.8.8", 5353, 53,
                                  payload=b"q"), 2.5, 1),
            Mbuf(b"", 3.0625, 0),  # empty frame keeps its slot
        ]

    def test_round_trip_preserves_everything(self):
        mbufs = self._mbufs()
        batch = pickle.loads(pickle.dumps(PackedBatch.pack(mbufs, 5)))
        out = batch.unpack()
        assert len(batch) == len(out) == len(mbufs)
        for orig, new in zip(mbufs, out):
            assert bytes(new.data) == bytes(orig.data)
            assert new.timestamp == orig.timestamp  # exact float64
            assert new.port == orig.port
            assert new.queue == 5
            assert new.stack is None and new.pkt_term_node is None

    def test_unpacked_data_is_zero_copy_view(self):
        batch = PackedBatch.pack(self._mbufs())
        views = batch.unpack()
        assert all(isinstance(m.data, memoryview) for m in views)
        assert views[0].data.obj is batch.blob

    def test_jumbo_frame_promotes_length_array(self):
        # A frame longer than 0xFFFF bytes cannot ship its length as
        # u16; the wire encoding must promote the whole length array to
        # u32 and still round-trip byte-exactly (a silent u16 wrap
        # would corrupt every offset after the jumbo frame).
        # Built by appending raw bytes: the builder's checksum pseudo
        # header is u16-limited, but the wire can carry super-jumbo
        # frames and PackedBatch must not care what is in them.
        jumbo = tcp_frame(payload=b"") + b"J" * 70000
        assert len(jumbo) > 0xFFFF
        mbufs = [
            Mbuf(tcp_frame(payload=b"before"), 1.0, 0),
            Mbuf(jumbo, 2.0, 1),
            Mbuf(tcp_frame(payload=b"after"), 3.0, 0),
        ]
        packed = PackedBatch.pack(mbufs, 2)
        lengths, code, _ports = packed._wire_fields()
        assert code == "I"
        assert list(lengths) == [len(m.data) for m in mbufs]
        batch = pickle.loads(pickle.dumps(packed))
        out = batch.unpack()
        assert len(out) == 3
        for orig, new in zip(mbufs, out):
            assert bytes(new.data) == bytes(orig.data)
            assert new.timestamp == orig.timestamp
            assert new.port == orig.port

    def test_memoryview_mbufs_roundtrip_through_ipc(self):
        # Worker-side mbufs are memoryview-backed; re-packing them
        # (e.g. a redo-log replay built from unpacked views) and
        # parsing after another IPC hop must agree with the original.
        mbufs = self._mbufs()
        hop1 = pickle.loads(pickle.dumps(PackedBatch.pack(mbufs, 1)))
        hop2 = pickle.loads(pickle.dumps(
            PackedBatch.pack(hop1.unpack(), 1)))
        for orig, new in zip(mbufs, hop2.unpack()):
            assert bytes(new.data) == bytes(orig.data)
            want = parse_stack(Mbuf(bytes(orig.data)))
            got = parse_stack(new)
            assert (got.tcp is None) == (want.tcp is None)
            assert (got.udp is None) == (want.udp is None)
            if want.ipv4 is not None:
                assert got.ipv4.src_addr_bytes() == \
                    want.ipv4.src_addr_bytes()
            assert got.l4_payload() == want.l4_payload()

    def test_uniform_ports_collapse_on_the_wire(self):
        batch = PackedBatch.pack(
            [Mbuf(b"x" * 10, float(i), 3) for i in range(4)])
        _lengths, code, ports = batch._wire_fields()
        assert code == "H"
        assert ports == 3
        restored = pickle.loads(pickle.dumps(batch))
        assert list(restored.ports) == [3, 3, 3, 3]

    def test_mixed_ports_survive(self):
        batch = pickle.loads(pickle.dumps(PackedBatch.pack(
            [Mbuf(b"x", 0.0, 0), Mbuf(b"y", 0.5, 2)])))
        assert [m.port for m in batch.unpack()] == [0, 2]

    def test_oversize_frame_uses_wide_lengths(self):
        batch = PackedBatch.pack([Mbuf(b"z" * 70000, 0.0, 0)])
        assert batch._wire_fields()[1] == "I"
        restored = pickle.loads(pickle.dumps(batch))
        assert len(restored.unpack()[0].data) == 70000

    def test_empty_batch(self):
        batch = pickle.loads(pickle.dumps(PackedBatch.pack([])))
        assert len(batch) == 0
        assert batch.unpack() == []

    def test_nbytes_tracks_wire_payload(self):
        mbufs = [Mbuf(b"x" * 100, 0.0, 0) for _ in range(8)]
        batch = PackedBatch.pack(mbufs)
        # frames + u16 length + f64 timestamp per packet, scalar port
        assert batch.nbytes == 8 * (100 + 2 + 8)
        assert len(pickle.dumps(batch)) < batch.nbytes + 120


class TestBatchedTraffic:
    def test_pack_stream_and_iter_mbufs_flatten(self):
        mbufs = [Mbuf(tcp_frame(), float(i), 0) for i in range(10)]
        batches = list(pack_stream(mbufs, batch_size=4))
        assert [len(b) for b in batches] == [4, 4, 2]
        flat = list(iter_mbufs(batches))
        assert [m.timestamp for m in flat] == \
            [m.timestamp for m in mbufs]
        assert [bytes(m.data) for m in flat] == \
            [m.data for m in mbufs]

    def test_iter_mbufs_list_fast_path_is_identity(self):
        mbufs = [Mbuf(tcp_frame(), 0.0, 0)]
        assert iter_mbufs(mbufs) is mbufs

    def test_iter_mbufs_mixed_stream(self):
        a = Mbuf(tcp_frame(), 0.0, 0)
        b = Mbuf(tcp_frame(dst_port=80), 1.0, 0)
        packed = PackedBatch.pack([b])
        flat = list(iter_mbufs([a, packed]))
        assert flat[0] is a
        assert bytes(flat[1].data) == b.data

    def test_generator_packed_batches_match_packets(self):
        gen_a = CampusTrafficGenerator(seed=7)
        gen_b = CampusTrafficGenerator(seed=7)
        plain = gen_a.packets(duration=0.05, gbps=0.05)
        packed = list(gen_b.packed_batches(duration=0.05, gbps=0.05,
                                           batch_size=64))
        flat = list(iter_mbufs(packed))
        assert len(flat) == len(plain)
        assert all(bytes(f.data) == p.data and
                   f.timestamp == p.timestamp and f.port == p.port
                   for f, p in zip(flat, plain))

    def test_runtime_accepts_packed_traffic(self):
        plain = CampusTrafficGenerator(seed=11).packets(
            duration=0.05, gbps=0.05)
        packed = list(CampusTrafficGenerator(seed=11).packed_batches(
            duration=0.05, gbps=0.05, batch_size=32))

        def run(traffic, parallel=False):
            runtime = Runtime(
                RuntimeConfig(cores=2, parallel=parallel),
                filter_str="tcp", datatype="connection", callback=None)
            return runtime.run(traffic).stats.to_dict()

        want = run(iter(plain))
        assert run(iter(packed)) == want
        assert run(packed, parallel=True) == want


class TestFilteredOutAllocationBudget:
    def test_filtered_packets_do_not_copy_payloads(self):
        """Regression guard: a packet rejected by the software packet
        filter must not allocate a copy of its (large) payload — the
        parse-once views borrow from the frame in place.

        The budget covers the retained per-packet parse state (the
        memoized PacketStack plus header views, a few hundred bytes)
        with headroom for allocator noise; it is far below the ~1.5 KB
        frames, so any per-packet payload copy on the reject path
        trips it.
        """
        per_packet = self._reject_path_bytes_per_packet(columnar=False)
        assert per_packet < 700, \
            f"filtered-out path allocates {per_packet:.0f} B/packet"

    def test_columnar_reject_path_stays_below_payload_copy(self):
        """Columnar mode keeps per-burst column state alive while a
        batch is pending, so its budget is higher than the scalar
        path's — but it must stay well below frame size: a payload
        copy per rejected packet would add >= 1400 B/packet."""
        per_packet = self._reject_path_bytes_per_packet(columnar=True)
        assert per_packet < 1100, \
            f"columnar reject path allocates {per_packet:.0f} B/packet"

    def _reject_path_bytes_per_packet(self, columnar: bool) -> float:
        n = 400
        frame = tcp_frame(payload=b"\xab" * 1400)
        traffic = [Mbuf(frame, i * 1e-4, 0) for i in range(n)]
        runtime = Runtime(RuntimeConfig(cores=1, columnar=columnar),
                          filter_str="udp", datatype="packet",
                          callback=None)
        tracemalloc.start()
        try:
            tracemalloc.reset_peak()
            before, _ = tracemalloc.get_traced_memory()
            report = runtime.run(iter(traffic))
            _now, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert report.stats.pf_packets == 0  # everything filtered out
        return (peak - before) / n
