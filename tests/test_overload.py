"""Tests for the closed-loop overload control subsystem
(:mod:`repro.overload`): the degradation ladder, the loss ledger, the
burst traffic generator, failfast, cross-backend parity, and the
reassembly-truncation accounting.
"""

import io

import pytest

from repro import Runtime, RuntimeConfig
from repro.core.cycles import CostModel
from repro.core.pipeline import CorePipeline
from repro.core.subscription import Subscription
from repro.core.datatypes import SUBSCRIBABLES
from repro.conntrack.conn import ConnState
from repro.errors import ConfigError
from repro.overload import (
    RUNG_DOWNGRADE,
    RUNG_NAMES,
    LossLedger,
    merge_ledgers,
)
from repro.traffic import (
    BurstTrafficGenerator,
    BurstWindow,
    CampusTrafficGenerator,
    FlowSpec,
    tls_flow,
)

#: A per-packet conn-track cost (cycles) that makes the burst trace
#: overload a core: ~10 ms of virtual work per stateful packet.
HEAVY = CostModel(conn_track=3e7)


def burst_traffic(seed=1, duration=1.0, gbps=0.05):
    return BurstTrafficGenerator(seed=seed).packets(duration=duration,
                                                    gbps=gbps)


def run(traffic, policy="ladder", parallel=False, cores=2,
        filter_str="", datatype="connection", callback=None, **kw):
    kw.setdefault("cost_model", HEAVY)
    config = RuntimeConfig(cores=cores, parallel=parallel,
                           overload_policy=policy,
                           overload_target_lag=0.02, **kw)
    runtime = Runtime(config, filter_str=filter_str, datatype=datatype,
                      callback=callback)
    return runtime.run(iter(list(traffic)))


# ---------------------------------------------------------------------------
# burst traffic generator
# ---------------------------------------------------------------------------
class TestBurstTraffic:
    def test_deterministic(self):
        a = burst_traffic(seed=7)
        b = burst_traffic(seed=7)
        assert len(a) == len(b)
        assert all(x.timestamp == y.timestamp and x.data == y.data
                   for x, y in zip(a, b))

    def test_seed_changes_stream(self):
        a = burst_traffic(seed=1)
        b = burst_traffic(seed=2)
        assert [m.timestamp for m in a] != [m.timestamp for m in b]

    def test_burst_concentrates_arrivals(self):
        """The default window multiplies arrivals in [0.4, 0.6): that
        20% slice of the duration must hold far more than 20% of
        connection starts."""
        gen = BurstTrafficGenerator(seed=3)
        arrivals = []
        build = gen._campus._one_connection

        def spy(ts):
            arrivals.append(ts)
            return build(ts)

        gen._campus._one_connection = spy
        gen.packets(duration=1.0, gbps=0.05)
        in_window = sum(1 for t in arrivals if 0.4 <= t < 0.6)
        assert in_window > 0.4 * len(arrivals)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            BurstWindow(start=1.5)
        with pytest.raises(ValueError):
            BurstWindow(duration=0.0)
        with pytest.raises(ValueError):
            BurstWindow(intensity=0.5)

    def test_sorted_stream(self):
        ts = [m.timestamp for m in burst_traffic(seed=5)]
        assert ts == sorted(ts)


# ---------------------------------------------------------------------------
# the ladder engages and accounts for every packet
# ---------------------------------------------------------------------------
class TestLadderEngages:
    def test_burst_overloads_without_ladder(self):
        """The scenario the ladder exists for: the same burst under no
        overload policy drives sustained loss (Section 5.3's signal)."""
        from repro.core.monitor import StatsMonitor
        monitor = StatsMonitor(interval=0.05)
        config = RuntimeConfig(cores=2, cost_model=HEAVY)
        runtime = Runtime(config, filter_str="", datatype="connection",
                          callback=None)
        runtime.run(iter(burst_traffic()), monitor=monitor)
        losses = [s.loss_fraction > 0 for s in monitor.samples]
        # Three consecutive lossy intervals — sustained_loss fires mid-
        # run (the quiet tail clears the trailing-window property).
        assert any(all(losses[i:i + 3]) for i
                   in range(len(losses) - 2))

    def test_ladder_sheds_and_accounts(self):
        report = run(burst_traffic())
        ov = report.overload
        assert ov is not None and ov.engaged
        assert ov.packets_shed > 0
        assert ov.max_rung_seen >= 1
        assert ov.transitions
        # Every packet is either analyzed or attributed to a rung.
        assert ov.packets_seen == ov.packets_analyzed + ov.packets_shed
        assert sum(ov.shed_packets) == ov.packets_shed
        assert ov.packets_seen == report.stats.processed_packets
        # Every shed packet also carries a funnel-layer attribution.
        assert sum(ov.layer_packets.values()) == ov.packets_shed
        # conns_shed mirrors the refused-packet count (the same
        # convention as memory_policy="shed").
        assert report.stats.conns_shed == ov.packets_shed

    def test_ladder_completes_where_failfast_aborts(self):
        ladder = run(burst_traffic())
        assert not ladder.failed_fast
        failfast = run(burst_traffic(), policy="failfast")
        assert failfast.failed_fast
        assert failfast.overload.failfast_at is not None

    def test_monitor_surfaces_rung_and_shed(self):
        from repro.core.monitor import StatsMonitor
        monitor = StatsMonitor(interval=0.05)
        config = RuntimeConfig(cores=2, overload_policy="ladder",
                               overload_target_lag=0.02,
                               cost_model=HEAVY)
        runtime = Runtime(config, filter_str="", datatype="connection",
                          callback=None)
        runtime.run(iter(burst_traffic()), monitor=monitor)
        assert max(s.overload_rung for s in monitor.samples) >= 1
        shed = sum(s.shed_packets for s in monitor.samples)
        assert shed > 0
        hot = [s for s in monitor.samples if s.overload_rung]
        assert any("rung=" in s.format() for s in hot)
        # Quiet samples keep the historical line format.
        config2 = RuntimeConfig(cores=2)
        monitor2 = StatsMonitor(interval=0.05)
        runtime2 = Runtime(config2, filter_str="",
                           datatype="connection", callback=None)
        runtime2.run(iter(CampusTrafficGenerator(seed=9).packets(
            duration=0.3, gbps=0.02)), monitor=monitor2)
        assert all("rung=" not in s.format() for s in monitor2.samples)

    def test_rung_time_covers_run(self):
        report = run(burst_traffic())
        ov = report.overload
        assert sum(ov.rung_time) > 0
        # Time was actually spent on an elevated rung.
        assert sum(ov.rung_time[1:]) > 0

    def test_off_policy_has_no_ledger(self):
        report = run(burst_traffic(), policy="off")
        assert report.overload is None
        assert report.stats.conns_shed == 0


# ---------------------------------------------------------------------------
# correctness invariant: admitted connections are unaffected
# ---------------------------------------------------------------------------
class TestAdmittedConnectionsExact:
    @staticmethod
    def _records(policy):
        collected = []

        def callback(record):
            collected.append(record)

        run(burst_traffic(), policy=policy, callback=callback,
            overload_max_rung=2)
        # Key on (tuple, first_ts): client ports are recycled across
        # the trace, so a canonical tuple can identify several
        # connection incarnations.
        return {
            (record.five_tuple.canonical(), record.first_ts): (
                record.pkts_orig, record.pkts_resp,
                record.bytes_orig, record.bytes_resp,
                record.payload_bytes_orig, record.payload_bytes_resp,
                record.history, record.service,
                record.terminated_gracefully,
            )
            for record in collected
        }

    def test_admitted_records_byte_identical(self):
        baseline = self._records("off")
        shedding = self._records("ladder")
        # The ladder refused a meaningful share of connections ...
        assert len(shedding) < len(baseline)
        assert shedding  # ... but not everything.
        # Every connection the ladder admitted produced a record
        # byte-identical to the unshedded run's.
        for key, summary in shedding.items():
            assert baseline[key] == summary


# ---------------------------------------------------------------------------
# failfast reproduces the historical behavior exactly
# ---------------------------------------------------------------------------
class TestFailfast:
    def test_light_run_identical_to_off(self):
        """failfast only watches; an unloaded run's stats must be
        byte-identical to overload_policy=off."""
        light = CampusTrafficGenerator(seed=3).packets(duration=0.3,
                                                       gbps=0.05)
        off = run(light, policy="off", cost_model=CostModel())
        ff = run(light, policy="failfast", cost_model=CostModel())
        assert off.stats.to_dict() == ff.stats.to_dict()
        assert not ff.failed_fast
        assert ff.overload is not None
        assert ff.overload.packets_shed == 0

    def test_hot_run_aborts_before_completion(self):
        off = run(burst_traffic(), policy="off")
        ff = run(burst_traffic(), policy="failfast")
        assert ff.failed_fast
        assert ff.overload.failfast_at is not None
        # failfast never sheds — it aborts instead.
        assert ff.overload.packets_shed == 0
        assert ff.stats.processed_packets < off.stats.processed_packets

    def test_failfast_at_identical_across_backends(self):
        seq = run(burst_traffic(), policy="failfast")
        par = run(burst_traffic(), policy="failfast", parallel=True)
        assert seq.overload.failfast_at == par.overload.failfast_at

    def test_ladder_with_rung4_trips(self):
        report = run(burst_traffic(), overload_max_rung=4)
        assert report.failed_fast
        # The climb is recorded: the run reached the failfast rung.
        assert report.overload.max_rung_seen == 4


# ---------------------------------------------------------------------------
# cross-backend parity on shedding runs
# ---------------------------------------------------------------------------
class TestParity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_ladder_parity(self, workers):
        seq = run(burst_traffic(), cores=workers)
        par = run(burst_traffic(), cores=workers, parallel=True)
        assert seq.stats.to_dict() == par.stats.to_dict()
        assert seq.overload.to_dict() == par.overload.to_dict()
        assert seq.overload.packets_shed > 0

    def test_downgrade_run_parity(self):
        seq = run(burst_traffic(), filter_str="tls",
                  datatype="tls_handshake", overload_heavy_bytes=0)
        par = run(burst_traffic(), filter_str="tls",
                  datatype="tls_handshake", overload_heavy_bytes=0,
                  parallel=True)
        assert seq.stats.to_dict() == par.stats.to_dict()
        assert seq.overload.to_dict() == par.overload.to_dict()


# ---------------------------------------------------------------------------
# rung 3: the heavy-connection circuit breaker
# ---------------------------------------------------------------------------
def _pipeline(**kw):
    config = RuntimeConfig(cores=1, overload_policy="ladder",
                           overload_target_lag=0.02, **kw)
    sub = Subscription("tls", SUBSCRIBABLES["tls_handshake"], None,
                       nic=config.nic)
    return CorePipeline(0, sub, config)


def _stalled_flow(port: int, hole: int):
    """A TLS flow with a sequence hole so the buffered reassembler
    retains the segments past it and the connection stays mid-parse.
    The hole position controls how many bytes pile up behind it."""
    flow = tls_flow(FlowSpec("10.0.0.1", "171.64.0.1", port, 443),
                    "example.com", appdata_bytes=9000)
    return flow[:hole] + flow[hole + 1:hole + 8]


class TestDowngrade:
    def test_heavy_connections_ordering(self):
        """Victims come heaviest-first with the key as tiebreak."""
        pipeline = _pipeline(reassembler="buffered")
        # Two stalled flows buffering different amounts past the hole.
        pipeline.process_batch(_stalled_flow(40000, 4))
        pipeline.process_batch(_stalled_flow(40001, 3))
        probing = [c for c in pipeline.table
                   if c.state in (ConnState.PROBE, ConnState.PARSE)]
        assert len(probing) == 2
        heavy = pipeline.table.heavy_connections(0)
        assert len(heavy) == 2
        weights = [c.memory_bytes for c in heavy]
        assert weights == sorted(weights, reverse=True)
        assert weights[0] > weights[1]

    def test_downgrade_records_and_stops_heavy_state(self):
        pipeline = _pipeline(reassembler="buffered",
                             overload_heavy_bytes=0)
        pipeline.process_batch(_stalled_flow(40000, 4))
        victims = pipeline.table.heavy_connections(0)
        assert victims
        pipeline._overload.rung = RUNG_DOWNGRADE
        pipeline._overload_downgrade(pipeline.now)
        ledger = pipeline.stats.overload
        assert ledger.conns_downgraded == len(victims)
        assert ledger.layer_packets.get("session_filter") is None or \
            ledger.conns_downgraded
        for conn in victims:
            # Heavy state is gone: either tombstoned or demoted to
            # plain tracking with the reassembler dropped.
            assert conn.state not in (ConnState.PROBE, ConnState.PARSE)


# ---------------------------------------------------------------------------
# reassembly truncation: explicit events, not silent drops
# ---------------------------------------------------------------------------
class TestTruncation:
    def test_buffer_overflow_records_events(self):
        """A never-filled hole forces drops once max_buffer is hit,
        and every drop is an explicit truncation event."""
        from repro.stream.buffered import BufferedReassembler
        from repro.stream.pdu import L4Pdu

        reasm = BufferedReassembler(max_buffer=100)
        # Seed the base at seq 0, then leave a hole at [0, 1000) and
        # pile segments up behind it.
        def pdu(seq, payload):
            return L4Pdu(mbuf=None, payload=payload, seq=seq, flags=0,
                         from_orig=True, timestamp=0.0)

        reasm.push(pdu(0, b""))
        assert reasm.push(pdu(1000, b"x" * 80)) == []  # held (fits)
        assert reasm.push(pdu(1080, b"y" * 80)) == []  # dropped
        assert reasm.truncated_segments == 1
        assert reasm.truncated_bytes == 80
        assert reasm.drain_truncations() == [80]
        assert reasm.drain_truncations() == []  # drained exactly once
        # Memory never exceeded the cap.
        assert reasm.memory_bytes <= 100

    def test_pipeline_surfaces_truncation(self):
        """Truncations flow into RuntimeStats and the loss ledger."""
        from repro.stream.buffered import BufferedReassembler

        pipeline = _pipeline(reassembler="buffered")
        flow = tls_flow(FlowSpec("10.0.0.1", "171.64.0.1", 40000, 443),
                        "example.com", appdata_bytes=9000)
        # Establish the connection, then cap its buffer so the stalled
        # tail overflows.
        pipeline.process_batch(flow[:3])
        conn = next(iter(pipeline.table))
        conn.reassembler = BufferedReassembler(max_buffer=64)
        pipeline.process_batch(flow[4:12])  # hole at segment 3
        stats = pipeline.stats
        assert stats.reasm_truncations > 0
        assert stats.reasm_truncated_bytes > 0
        ledger = stats.overload
        assert ledger.reasm_truncations == stats.reasm_truncations
        assert ledger.reasm_truncated_bytes == \
            stats.reasm_truncated_bytes

    def test_truncation_metrics_exported(self):
        """The truncation families appear in Prometheus output exactly
        when truncations happened (plain runs stay byte-identical)."""
        from repro.telemetry import export

        report = run(burst_traffic(gbps=0.01), policy="off",
                     cost_model=CostModel())
        stats = report.stats
        assert "repro_reassembly_truncations" not in \
            export.render_metrics(stats)
        stats.reasm_truncations = 3
        stats.reasm_truncated_bytes = 4096
        text = export.render_metrics(stats)
        assert "repro_reassembly_truncations_total 3" in text
        assert "repro_reassembly_truncated_bytes_total 4096" in text


# ---------------------------------------------------------------------------
# the loss ledger itself
# ---------------------------------------------------------------------------
class TestLossLedger:
    def test_record_and_invariants(self):
        ledger = LossLedger(core_id=0)
        ledger.packets_seen = 10
        ledger.record_shed(1, "packet_filter", 100)
        ledger.record_shed(2, "connection_filter", 200)
        ledger.record_shed(2, "connection_filter", 300)
        assert ledger.packets_shed == 3
        assert ledger.bytes_shed == 600
        assert ledger.packets_analyzed == 7
        assert ledger.layer_packets == {"packet_filter": 1,
                                        "connection_filter": 2}

    def test_merge_sums_and_sorts(self):
        a = LossLedger(core_id=0)
        a.packets_seen = 5
        a.record_transition(0.2, 0, 1, "pressure=2.00")
        a.record_shed(1, "packet_filter", 50)
        b = LossLedger(core_id=1)
        b.packets_seen = 7
        b.record_transition(0.1, 0, 1, "pressure=3.00")
        b.record_transition(0.3, 1, 0, "relaxed")
        merged = merge_ledgers([a, b])
        assert merged.packets_seen == 12
        assert merged.packets_shed == 1
        times = [t[0] for t in merged.transitions]
        assert times == sorted(times)
        assert merged.max_rung_seen == 1

    def test_merge_handles_none(self):
        assert merge_ledgers([None, None]) is None
        a = LossLedger(core_id=0)
        a.packets_seen = 1
        assert merge_ledgers([None, a]).packets_seen == 1

    def test_current_rung_tracks_transitions(self):
        ledger = LossLedger(core_id=0, initial_rung=2)
        assert ledger.current_rung == 2
        ledger.record_transition(0.5, 2, 3, "pressure=4.00")
        assert ledger.current_rung == 3

    def test_to_dict_and_describe(self):
        report = run(burst_traffic())
        payload = report.overload.to_dict()
        assert payload["packets_seen"] == \
            payload["packets_analyzed"] + payload["packets_shed"]
        assert payload["shed_by_rung"]
        assert payload["transitions"]
        assert set(payload["shed_by_rung"]) <= set(RUNG_NAMES)
        line = report.overload.describe()
        assert "shed=" in line and "max_rung=" in line


# ---------------------------------------------------------------------------
# rung survives a worker restart
# ---------------------------------------------------------------------------
class TestRungPersistence:
    def test_supervisor_remembers_rung(self):
        from repro.resilience.supervisor import WorkerSupervisor
        sup = WorkerSupervisor(2, None, 2, 64, 5.0)
        assert sup.last_rung(0) == 0
        sup.note_rung(0, 3)
        assert sup.last_rung(0) == 3
        assert sup.last_rung(1) == 0

    def test_pipeline_accepts_initial_rung(self):
        config = RuntimeConfig(cores=1, overload_policy="ladder")
        sub = Subscription("", SUBSCRIBABLES["connection"], None,
                           nic=config.nic)
        pipeline = CorePipeline(0, sub, config, initial_overload_rung=2)
        assert pipeline.overload_rung == 2
        # Rung 2 blocks all new connections from the very first packet.
        assert pipeline._ov_block == 2

    def test_restarted_worker_resumes_rung(self):
        """End to end: a planned worker crash mid-overload must not
        reopen the admission gate — the ledger keeps shedding."""
        from repro.resilience import FaultPlan
        plan = FaultPlan.from_dict(
            {"faults": [{"kind": "worker_crash", "core": 0,
                         "at_batch": 4}]})
        report = run(burst_traffic(), parallel=True, supervise=True,
                     fault_plan=plan)
        assert report.faults is not None
        assert report.faults.worker_restarts >= 1
        assert report.overload.packets_shed > 0


# ---------------------------------------------------------------------------
# exports: Prometheus families and the NDJSON ledger stream
# ---------------------------------------------------------------------------
class TestExports:
    def test_prometheus_families(self):
        from repro.telemetry import export
        report = run(burst_traffic(), telemetry=True)
        text = export.render_metrics(report.stats,
                                     overload=report.overload)
        assert "repro_overload_shed_packets_total" in text
        assert "repro_overload_shed_layer_packets_total" in text
        assert "repro_overload_rung_transitions_total" in text
        assert "repro_overload_rung_seconds" in text
        assert "repro_overload_failfast 0" in text

    def test_plain_run_output_unchanged(self):
        """No ladder → no overload families: pre-overload byte-identical
        rendering is preserved."""
        from repro.telemetry import export
        light = CampusTrafficGenerator(seed=3).packets(duration=0.3,
                                                       gbps=0.05)
        report = run(light, policy="off", cost_model=CostModel())
        text = export.render_metrics(report.stats,
                                     overload=report.overload)
        assert "repro_overload" not in text
        assert "repro_reassembly_truncations" not in text

    def test_ndjson_ledger(self):
        import json
        from repro.telemetry import export
        report = run(burst_traffic())
        sink = io.StringIO()
        count = export.write_overload(sink, report.overload)
        lines = [json.loads(line) for line in
                 sink.getvalue().splitlines()]
        assert len(lines) == count
        events = {line["event"] for line in lines}
        assert {"shed", "transition", "summary"} <= events
        summary = lines[-1]
        assert summary["packets_seen"] == \
            summary["packets_analyzed"] + summary["packets_shed"]

    def test_stats_dict_roundtrips_overload(self):
        import json
        report = run(burst_traffic())
        for stats in report.core_stats.values():
            payload = json.loads(json.dumps(stats.to_dict()))
            assert payload["overload"]["packets_seen"] == \
                stats.overload.packets_seen


# ---------------------------------------------------------------------------
# config validation
# ---------------------------------------------------------------------------
class TestConfigValidation:
    def test_unknown_policy(self):
        with pytest.raises(ConfigError):
            RuntimeConfig(overload_policy="aggressive")

    def test_conflicting_memory_policy(self):
        with pytest.raises(ConfigError, match="memory_policy"):
            RuntimeConfig(overload_policy="ladder",
                          memory_policy="shed",
                          memory_limit_bytes=1 << 20)

    def test_bad_knobs(self):
        with pytest.raises(ConfigError):
            RuntimeConfig(overload_policy="ladder",
                          overload_target_lag=0.0)
        with pytest.raises(ConfigError):
            RuntimeConfig(overload_policy="ladder",
                          overload_eval_interval=-1.0)
        with pytest.raises(ConfigError):
            RuntimeConfig(overload_policy="ladder", overload_max_rung=5)
        with pytest.raises(ConfigError):
            RuntimeConfig(overload_policy="ladder",
                          overload_relax_ticks=0)
