"""Tests for connection tracking: five-tuples, timer wheels, the table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conntrack import (
    ConnState,
    ConnTable,
    Connection,
    ConnectionTimers,
    FiveTuple,
    TcpConnState,
    TimeoutConfig,
    TimerWheel,
)
from repro.packet import Mbuf, TcpFlags, build_tcp_packet, parse_stack


def ft(src="10.0.0.1", dst="10.0.0.2", sport=1234, dport=443, proto=6):
    import ipaddress
    return FiveTuple(
        ipaddress.ip_address(src).packed, ipaddress.ip_address(dst).packed,
        sport, dport, proto,
    )


class TestFiveTuple:
    def test_from_stack(self):
        stack = parse_stack(Mbuf(build_tcp_packet("1.2.3.4", "5.6.7.8",
                                                  10, 20)))
        tup = FiveTuple.from_stack(stack)
        assert tup.src_port == 10 and tup.dst_port == 20
        assert tup.protocol == 6

    def test_from_stack_non_ip(self):
        assert FiveTuple.from_stack(parse_stack(Mbuf(b"\x00" * 64))) is None

    def test_canonical_direction_insensitive(self):
        assert ft().canonical() == ft().reversed().canonical()

    def test_canonical_distinguishes_flows(self):
        assert ft(sport=1).canonical() != ft(sport=2).canonical()
        assert ft(proto=6).canonical() != ft(proto=17).canonical()

    def test_same_direction(self):
        tup = ft()
        assert tup.same_direction(tup)
        assert not tup.same_direction(tup.reversed())

    def test_str(self):
        assert "10.0.0.1:1234 -> 10.0.0.2:443/tcp" == str(ft())


class TestTimerWheel:
    def test_basic_expiry(self):
        wheel = TimerWheel(tick=1.0, num_slots=16)
        wheel.schedule("a", 5.0)
        assert wheel.advance(4.0) == []
        assert wheel.advance(5.5) == ["a"]
        assert "a" not in wheel

    def test_reschedule_pushes_back(self):
        wheel = TimerWheel(tick=1.0, num_slots=16)
        wheel.schedule("a", 3.0)
        wheel.schedule("a", 10.0)  # refresh
        assert wheel.advance(5.0) == []
        assert wheel.advance(10.5) == ["a"]

    def test_cancel(self):
        wheel = TimerWheel(tick=1.0, num_slots=16)
        wheel.schedule("a", 3.0)
        wheel.cancel("a")
        assert wheel.advance(10.0) == []

    def test_beyond_horizon(self):
        wheel = TimerWheel(tick=1.0, num_slots=4)
        wheel.schedule("far", 100.0)
        assert wheel.advance(50.0) == []
        assert wheel.advance(101.0) == ["far"]

    def test_many_keys_fire_in_deadline_order_window(self):
        wheel = TimerWheel(tick=0.5, num_slots=32)
        for i in range(100):
            wheel.schedule(i, 1.0 + i * 0.1)
        fired = wheel.advance(5.99)
        assert sorted(fired) == list(range(50))
        assert len(wheel) == 50

    def test_len_tracks_live_keys(self):
        wheel = TimerWheel(tick=1.0, num_slots=8)
        wheel.schedule("a", 2.0)
        wheel.schedule("b", 3.0)
        assert len(wheel) == 2
        wheel.cancel("b")
        assert len(wheel) == 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TimerWheel(tick=0, num_slots=8)
        with pytest.raises(ValueError):
            TimerWheel(tick=1, num_slots=1)

    @settings(max_examples=30, deadline=None)
    @given(
        deadlines=st.lists(st.floats(0.1, 50.0), min_size=1, max_size=40),
        advance_to=st.floats(0.0, 60.0),
    )
    def test_property_fired_iff_due(self, deadlines, advance_to):
        """Invariant: after advance(t), a key has fired iff deadline<=t."""
        wheel = TimerWheel(tick=0.7, num_slots=16)
        for i, deadline in enumerate(deadlines):
            wheel.schedule(i, deadline)
        fired = set(wheel.advance(advance_to))
        for i, deadline in enumerate(deadlines):
            assert (i in fired) == (deadline <= advance_to)


class TestConnectionTimers:
    def test_two_tier(self):
        timers = ConnectionTimers(establish_timeout=5.0,
                                  inactivity_timeout=300.0)
        timers.on_new_connection("syn-only", now=0.0)
        timers.on_new_connection("handshake", now=0.0)
        timers.on_established("handshake", now=1.0)
        expired = timers.advance(10.0)
        assert expired == ["syn-only"]
        assert timers.advance(200.0) == []
        assert timers.advance(302.0) == ["handshake"]

    def test_activity_refresh(self):
        timers = ConnectionTimers(5.0, 300.0)
        timers.on_new_connection("c", 0.0)
        timers.on_activity("c", 4.0, established=False)
        assert timers.advance(6.0) == []  # refreshed to 9.0
        assert timers.advance(9.5) == ["c"]

    def test_no_timeouts_never_expires(self):
        timers = ConnectionTimers(None, None)
        timers.on_new_connection("c", 0.0)
        assert timers.advance(1e6) == []

    def test_inactivity_only(self):
        timers = ConnectionTimers(None, 300.0)
        timers.on_new_connection("syn-only", 0.0)
        assert timers.advance(10.0) == []  # no establish tier
        assert timers.advance(301.0) == ["syn-only"]


class TestConnection:
    def test_single_syn_detection(self):
        conn = Connection(ft(), now=0.0)
        conn.record_packet(True, 60, 0, 0.0, TcpFlags.SYN)
        assert conn.is_single_syn
        assert conn.tcp_state is TcpConnState.SYN_SENT

    def test_establishment(self):
        conn = Connection(ft(), now=0.0)
        conn.record_packet(True, 60, 0, 0.0, TcpFlags.SYN)
        newly = conn.record_packet(False, 60, 0, 0.1,
                                   TcpFlags.SYN | TcpFlags.ACK)
        assert newly and conn.established
        assert conn.established_ts == 0.1
        assert not conn.is_single_syn

    def test_establishment_via_responder_data(self):
        """Missing SYN-ACK (lossy tap) still establishes on reverse data."""
        conn = Connection(ft(), now=0.0)
        conn.record_packet(True, 60, 0, 0.0, TcpFlags.SYN)
        newly = conn.record_packet(False, 1500, 1448, 0.2, TcpFlags.ACK)
        assert newly and conn.established

    def test_fin_fin_closes(self):
        conn = Connection(ft(), now=0.0)
        conn.record_packet(True, 60, 0, 0.0, TcpFlags.SYN)
        conn.record_packet(False, 60, 0, 0.1, TcpFlags.SYN | TcpFlags.ACK)
        conn.record_packet(True, 60, 0, 0.2, TcpFlags.FIN | TcpFlags.ACK)
        assert conn.tcp_state is TcpConnState.CLOSING
        conn.record_packet(False, 60, 0, 0.3, TcpFlags.FIN | TcpFlags.ACK)
        assert conn.terminated

    def test_rst_closes(self):
        conn = Connection(ft(), now=0.0)
        conn.record_packet(True, 60, 0, 0.0, TcpFlags.RST)
        assert conn.terminated

    def test_udp_counts_as_established(self):
        conn = Connection(ft(proto=17), now=0.0)
        assert conn.established

    def test_counters_per_direction(self):
        conn = Connection(ft(), now=0.0)
        conn.record_packet(True, 100, 40, 0.0)
        conn.record_packet(False, 200, 160, 0.1)
        conn.record_packet(True, 300, 240, 0.2)
        assert (conn.pkts_orig, conn.pkts_resp) == (2, 1)
        assert (conn.bytes_orig, conn.bytes_resp) == (400, 200)
        assert conn.payload_bytes_orig == 280

    def test_buffering_and_memory(self):
        conn = Connection(ft(), now=0.0)
        base = conn.memory_bytes
        conn.buffer_packet(Mbuf(b"x" * 100))
        assert conn.memory_bytes == base + 100
        assert len(conn.drain_buffered()) == 1
        assert conn.memory_bytes == base


class TestConnTable:
    def test_create_and_lookup_both_directions(self):
        table = ConnTable()
        conn, created = table.get_or_create(ft(), now=0.0)
        assert created
        again, created2 = table.get_or_create(ft().reversed(), now=0.1)
        assert again is conn and not created2
        assert len(table) == 1

    def test_establish_timeout_expires_syn(self):
        table = ConnTable(TimeoutConfig(5.0, 300.0))
        conn, _ = table.get_or_create(ft(), now=0.0)
        conn.record_packet(True, 60, 0, 0.0, TcpFlags.SYN)
        expired = table.expire(now=6.0)
        assert expired == [conn]
        assert len(table) == 0
        assert table.expired_establish == 1

    def test_established_survives_establish_timeout(self):
        table = ConnTable(TimeoutConfig(5.0, 300.0))
        conn, _ = table.get_or_create(ft(), now=0.0)
        conn.record_packet(True, 60, 0, 0.0, TcpFlags.SYN)
        newly = conn.record_packet(False, 60, 0, 1.0,
                                   TcpFlags.SYN | TcpFlags.ACK)
        table.touch(conn, 1.0, newly)
        assert table.expire(now=10.0) == []
        expired = table.expire(now=302.0)
        assert expired == [conn]
        assert table.expired_inactive == 1

    def test_activity_refreshes_inactivity(self):
        table = ConnTable(TimeoutConfig(5.0, 300.0))
        conn, _ = table.get_or_create(ft(), now=0.0)
        newly = conn.record_packet(False, 60, 0, 0.0,
                                   TcpFlags.SYN | TcpFlags.ACK)
        table.touch(conn, 0.0, newly)
        for t in (100.0, 200.0, 300.0, 400.0):
            assert table.expire(now=t) == []
            conn.record_packet(True, 100, 60, t)
            table.touch(conn, t, False)
        assert table.expire(now=500.0) == []
        assert table.expire(now=701.0) == [conn]

    def test_remove_idempotent(self):
        table = ConnTable()
        conn, _ = table.get_or_create(ft(), now=0.0)
        table.remove(conn)
        table.remove(conn)
        assert table.removed == 1
        assert conn.state is ConnState.DELETE

    def test_drain(self):
        table = ConnTable()
        for i in range(5):
            table.get_or_create(ft(sport=i + 1), now=0.0)
        drained = table.drain()
        assert len(drained) == 5 and len(table) == 0

    def test_no_timeout_config_grows(self):
        table = ConnTable(TimeoutConfig.no_timeouts())
        for i in range(100):
            table.get_or_create(ft(sport=i + 1), now=float(i))
        assert table.expire(now=1e9) == []
        assert len(table) == 100

    def test_memory_accounting(self):
        table = ConnTable()
        conn, _ = table.get_or_create(ft(), now=0.0)
        base = table.memory_bytes
        conn.buffer_packet(Mbuf(b"y" * 1000))
        assert table.memory_bytes == base + 1000
