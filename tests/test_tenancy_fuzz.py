"""Shared-filter equivalence fuzz: merged trie == independent filters.

The whole multi-tenant design rests on one property: classifying a
packet once against the merged shared trie yields, for every tenant,
*exactly* the verdict that tenant's own compiled filter would have
produced on its own — same matched/terminal flags, same tenant-native
node id — on both execution backends (codegen and interp) and on both
the scalar and the columnar mask paths. This suite fuzzes random
filter sets over random traffic and asserts that equivalence
pointwise, plus the structural claims (predicate dedup, union hardware
filter) the tenancy layer advertises.
"""

import random

import pytest

from repro.filter import compile_filter
from repro.filter.batch import NO_MATCH, encode_verdict
from repro.packet import Mbuf, build_icmp_echo, build_tcp_packet, \
    build_udp_packet
from repro.packet.columnar import decode_mbufs
from repro.tenancy import SharedFilter, union_hardware

# -- random filter generation ---------------------------------------------

V4_ADDRS = ["10.0.0.1", "10.0.0.9", "10.1.2.3", "192.168.1.2",
            "8.8.8.8", "172.16.5.5"]
V6_ADDRS = ["2001:db8::1", "2001:db8::9", "2001:db8:ffff::2",
            "2606:4700::1111"]
PORTS = [53, 80, 443, 8080, 33000, 40000, 5353]


def random_conjunction(rng: random.Random) -> str:
    """One satisfiable conjunction: an ip/transport chain plus optional
    field constraints and an optional session-layer protocol."""
    ipproto = rng.choice(["ipv4", "ipv6", None])
    transport = rng.choice(["tcp", "udp", None])
    terms = []
    if ipproto:
        terms.append(ipproto)
        if rng.random() < 0.4:
            field = rng.choice(["src_addr", "dst_addr", "addr"])
            if ipproto == "ipv4":
                if rng.random() < 0.5:
                    terms.append(f"ipv4.{field} in 10.0.0.0/8")
                else:
                    terms.append(
                        f"ipv4.{field} = {rng.choice(V4_ADDRS)}")
            else:
                terms.append(f"ipv6.{field} = {rng.choice(V6_ADDRS)}")
    if transport:
        terms.append(transport)
        if rng.random() < 0.5:
            field = rng.choice(["src_port", "dst_port", "port"])
            terms.append(
                f"{transport}.{field} = {rng.choice(PORTS)}")
    if rng.random() < 0.25:
        if transport == "tcp":
            terms.append(rng.choice(["tls", "http"]))
        elif transport == "udp":
            terms.append("dns")
    if not terms:
        terms.append(rng.choice(["tcp", "udp", "ipv4", "ipv6"]))
    return " and ".join(terms)


def random_filter(rng: random.Random) -> str:
    if rng.random() < 0.06:
        return ""  # match-all tenant
    clauses = [random_conjunction(rng)
               for _ in range(rng.randint(1, 3))]
    return " or ".join(f"({c})" if " or " not in c else c
                       for c in clauses)


# -- random traffic --------------------------------------------------------

def random_frame(rng: random.Random) -> bytes:
    kind = rng.random()
    if kind < 0.04:
        return build_icmp_echo(rng.choice(V4_ADDRS),
                               rng.choice(V4_ADDRS))
    if kind < 0.08:
        # Truncated / malformed: exercises the slow-row path.
        base = build_tcp_packet(src="10.0.0.1", dst="10.0.0.2",
                                src_port=1, dst_port=2)
        return base[:rng.randint(0, len(base) - 1)]
    v6 = rng.random() < 0.35
    src = rng.choice(V6_ADDRS if v6 else V4_ADDRS)
    dst = rng.choice(V6_ADDRS if v6 else V4_ADDRS)
    sport = rng.choice(PORTS)
    dport = rng.choice(PORTS)
    payload = bytes(rng.randint(0, 40))
    if rng.random() < 0.5:
        return build_tcp_packet(src=src, dst=dst, src_port=sport,
                                dst_port=dport, payload=payload)
    return build_udp_packet(src=src, dst=dst, src_port=sport,
                            dst_port=dport, payload=payload)


def random_mbufs(rng: random.Random, count: int):
    return [Mbuf(random_frame(rng), 0.0001 * (i + 1), 0)
            for i in range(count)]


# -- the equivalence property ----------------------------------------------

def assert_equivalent(shared: SharedFilter, mbufs) -> None:
    """Shared verdicts == independent per-tenant verdicts, pointwise."""
    # Scalar path: every packet, every tenant.
    for mbuf in mbufs:
        fanned = shared.classify(mbuf)
        for t, compiled in enumerate(shared.filters):
            want = compiled.packet_filter(Mbuf(bytes(mbuf.data)))
            got = fanned[t]
            assert got == want, (
                f"scalar verdict diverges for tenant "
                f"{shared.names[t]!r} ({compiled.text!r}): "
                f"shared={got} independent={want}")
    # Columnar mask path: fast rows only, like every batch filter.
    cols = decode_mbufs(mbufs)
    batched = shared.classify_batch(cols)
    independent = [compiled.packet_filter_batch
                   for compiled in shared.filters]
    if shared.batch_supported:
        assert batched is not None
        for t, batch_fn in enumerate(independent):
            assert batch_fn is not None
            want_vec = batch_fn(cols)
            for i in range(cols.n):
                if not cols.fast[i]:
                    continue
                assert batched[t][i] == want_vec[i], (
                    f"batch verdict diverges for tenant "
                    f"{shared.names[t]!r} "
                    f"({shared.filters[t].text!r}) row {i}")
    else:
        assert batched is None


class TestSharedFilterFuzz:
    @pytest.mark.parametrize("mode", ["codegen", "interp"])
    @pytest.mark.parametrize("seed", range(12))
    def test_random_filter_sets(self, seed, mode):
        rng = random.Random(0xBEEF + seed)
        tenant_count = rng.randint(2, 5)
        names = [f"tenant{i}" for i in range(tenant_count)]
        filters = []
        for _ in names:
            filters.append(
                compile_filter(random_filter(rng), mode=mode))
        shared = SharedFilter(names, filters)
        assert_equivalent(shared, random_mbufs(rng, 80))

    @pytest.mark.parametrize("mode", ["codegen", "interp"])
    def test_overlapping_prefixes_dedup(self, mode):
        """Tenants sharing ipv4/tcp prefixes merge those nodes."""
        texts = ["ipv4 and tcp.dst_port = 443",
                 "ipv4 and tcp.dst_port = 80",
                 "ipv4 and tcp",
                 "ipv4 and udp.dst_port = 53"]
        filters = [compile_filter(t, mode=mode) for t in texts]
        shared = SharedFilter([f"t{i}" for i in range(len(texts))],
                              filters)
        assert shared.shared_packet_nodes < shared.tenant_packet_nodes
        rng = random.Random(7)
        assert_equivalent(shared, random_mbufs(rng, 60))

    @pytest.mark.parametrize("mode", ["codegen", "interp"])
    def test_identical_filters_fan_out(self, mode):
        """N tenants with the same filter share the whole trie but
        keep distinct verdict fan-out slots."""
        filters = [compile_filter("tcp.dst_port = 443", mode=mode)
                   for _ in range(3)]
        shared = SharedFilter(["a", "b", "c"], filters)
        mbufs = random_mbufs(random.Random(11), 40)
        for mbuf in mbufs:
            fanned = shared.classify(mbuf)
            assert fanned[0] == fanned[1] == fanned[2]
        assert_equivalent(shared, mbufs)

    def test_match_all_tenant(self):
        """An empty filter is terminal at the root: every packet —
        including non-IP and malformed frames — matches node 0."""
        filters = [compile_filter(""), compile_filter("udp")]
        shared = SharedFilter(["all", "dns"], filters)
        mbufs = random_mbufs(random.Random(3), 50)
        for mbuf in mbufs:
            fanned = shared.classify(mbuf)
            assert fanned[0].matched and fanned[0].terminal \
                and fanned[0].node == 0
        assert_equivalent(shared, mbufs)

    @pytest.mark.parametrize("mode", ["codegen", "interp"])
    def test_first_match_priority_order(self, mode):
        """A tenant whose filter has overlapping OR branches must get
        the same branch's node id from the shared walk as from its own
        filter (the ladder-order property)."""
        texts = [
            "tcp.dst_port = 443 or tcp",
            "tcp or tcp.dst_port = 443",
            "ipv4 or (ipv4 and tcp)",
            "(ipv4 and tcp) or ipv4 or udp",
        ]
        filters = [compile_filter(t, mode=mode) for t in texts]
        shared = SharedFilter([f"t{i}" for i in range(len(texts))],
                              filters)
        assert_equivalent(shared, random_mbufs(random.Random(23), 80))

    def test_union_hardware_admits_every_tenant(self):
        filters = [compile_filter("tcp.dst_port = 443"),
                   compile_filter("udp.dst_port = 53"),
                   compile_filter("ipv4.src_addr in 10.0.0.0/8")]
        hw = union_hardware(filters)
        from repro.packet.stack import parse_stack
        rng = random.Random(5)
        for mbuf in random_mbufs(rng, 60):
            stack = parse_stack(mbuf)
            if stack.eth is None:
                continue
            admitted_any = any(f.hardware.admits(stack)
                               for f in filters)
            if admitted_any:
                assert hw.admits(stack)

    def test_match_all_hardware_union_is_accept_all(self):
        filters = [compile_filter("tcp"), compile_filter("")]
        assert union_hardware(filters).accept_all
