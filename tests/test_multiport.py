"""Tests for multi-port ingest (the paper's dual-NIC stress setup)."""

import pytest

from repro import Runtime, RuntimeConfig
from repro.traffic import (
    CampusTrafficGenerator,
    FlowSpec,
    duplicate_across_ports,
    tls_flow,
)


class TestDuplicateAcrossPorts:
    def test_duplication(self):
        packets = tls_flow(FlowSpec("10.0.0.1", "1.1.1.1", 1000, 443),
                           "dup.example")
        doubled = duplicate_across_ports(packets, ports=2)
        assert len(doubled) == 2 * len(packets)
        ports = {m.port for m in doubled}
        assert ports == {0, 1}
        times = [m.timestamp for m in doubled]
        assert times == sorted(times)

    def test_invalid_ports(self):
        with pytest.raises(ValueError):
            duplicate_across_ports([], ports=0)


class TestMultiPortRuntime:
    def test_double_ingress_accounting(self):
        traffic = CampusTrafficGenerator(seed=66).packets(duration=0.2,
                                                          gbps=0.05)
        doubled = duplicate_across_ports(traffic, ports=2)
        runtime = Runtime(RuntimeConfig(cores=4), filter_str="",
                          datatype="packet", callback=None, ports=2)
        stats = runtime.run(iter(doubled)).stats
        assert stats.ingress_packets == 2 * len(traffic)
        for nic in runtime.nics:
            assert nic.stats.received_packets == len(traffic)

    def test_flow_affinity_across_ports(self):
        """Duplicated packets of a flow land on the same core from
        either NIC (symmetric RSS with the same key/table)."""
        packets = tls_flow(FlowSpec("10.0.0.7", "171.64.3.3", 1234, 443),
                           "affinity.example")
        doubled = duplicate_across_ports(packets, ports=2)
        runtime = Runtime(RuntimeConfig(cores=8), filter_str="",
                          datatype="packet", callback=None, ports=2)
        runtime.run(iter(doubled))
        active = [i for i, p in enumerate(runtime.pipelines)
                  if p.stats.packets]
        assert len(active) == 1  # one flow → one core, both ports

    def test_duplicated_tls_still_parses(self):
        """The paper's stress mode processes every packet twice; the
        duplicate stream of a flow hits the same connection (duplicate
        segments are dropped by the reorderer) and the handshake still
        parses exactly once."""
        got = []
        packets = tls_flow(FlowSpec("10.0.0.9", "171.64.3.9", 4321, 443),
                           "twice.example.com")
        doubled = duplicate_across_ports(packets, ports=2)
        runtime = Runtime(RuntimeConfig(cores=4), filter_str="tls",
                          datatype="tls_handshake", callback=got.append,
                          ports=2)
        runtime.run(iter(doubled))
        assert [h.sni() for h in got] == ["twice.example.com"]

    def test_single_port_unchanged(self):
        got = []
        packets = tls_flow(FlowSpec("10.0.0.1", "1.1.1.1", 1000, 443),
                           "one.example.com")
        runtime = Runtime(RuntimeConfig(cores=2), filter_str="tls",
                          datatype="tls_handshake", callback=got.append)
        runtime.run(iter(packets))
        assert len(runtime.nics) == 1
        assert [h.sni() for h in got] == ["one.example.com"]
