"""Tests for the direct and buffered record writers (Section 5.3)."""

import io
import json

import pytest

from repro import Runtime, RuntimeConfig
from repro.analysis.logwriter import (
    BUFFERED_WRITE_CYCLES,
    DIRECT_WRITE_CYCLES,
    BufferedLineWriter,
    BufferedRecordWriter,
    DirectRecordWriter,
    render_record,
)
from repro.traffic import CampusTrafficGenerator, FlowSpec, tls_flow


class TestRenderRecord:
    def test_tls_record(self):
        got = []
        runtime = Runtime(RuntimeConfig(cores=1), filter_str="tls",
                          datatype="tls_handshake", callback=got.append)
        runtime.run(iter(tls_flow(
            FlowSpec("10.0.0.1", "1.1.1.1", 1000, 443), "log.example")))
        line = render_record(got[0])
        payload = json.loads(line)
        assert payload["type"] == "tls"
        assert payload["sni"] == "log.example"

    def test_connection_record(self):
        got = []
        runtime = Runtime(RuntimeConfig(cores=1), filter_str="tcp",
                          datatype="connection", callback=got.append)
        runtime.run(iter(tls_flow(
            FlowSpec("10.0.0.1", "1.1.1.1", 1000, 443), "x")))
        payload = json.loads(render_record(got[0]))
        assert payload["type"] == "connection"
        assert payload["pkts"] > 0
        assert "10.0.0.1" in payload["five_tuple"]

    def test_unknown_object(self):
        payload = json.loads(render_record(object()))
        assert payload == {"type": "object"}


class TestDirectWriter:
    def test_flush_per_record(self):
        sink = io.StringIO()
        writer = DirectRecordWriter(sink)
        writer({"not": "subscribable"}.__class__())  # any object
        writer(object())
        assert writer.records == 2
        assert writer.flushes == 2
        assert len(sink.getvalue().splitlines()) == 2


class TestBufferedWriter:
    def test_batches(self):
        sink = io.StringIO()
        writer = BufferedRecordWriter(sink, batch_size=3)
        for _ in range(7):
            writer(object())
        assert writer.flushes == 2  # two full batches
        writer.close()
        assert writer.flushes == 3  # final partial batch
        assert len(sink.getvalue().splitlines()) == 7

    def test_context_manager(self):
        sink = io.StringIO()
        with BufferedRecordWriter(sink, batch_size=100) as writer:
            writer(object())
        assert len(sink.getvalue().splitlines()) == 1

    def test_file_sink(self, tmp_path):
        path = tmp_path / "records.ndjson"
        with BufferedRecordWriter(path, batch_size=2) as writer:
            writer(object())
            writer(object())
            writer(object())
        lines = path.read_text().splitlines()
        assert len(lines) == 3

    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            BufferedRecordWriter(io.StringIO(), batch_size=0)

    def test_flush_on_gc(self):
        """Regression: a writer dropped without close() used to lose
        its buffered tail; __del__ now guarantees the flush."""
        sink = io.StringIO()
        writer = BufferedRecordWriter(sink, batch_size=100)
        for _ in range(5):
            writer(object())
        assert sink.getvalue() == ""  # still buffered
        del writer
        import gc
        gc.collect()
        assert len(sink.getvalue().splitlines()) == 5

    def test_close_idempotent(self):
        sink = io.StringIO()
        writer = BufferedRecordWriter(sink, batch_size=10)
        writer(object())
        writer.close()
        writer.close()  # second close is a no-op
        assert writer.flushes == 1
        with pytest.raises(ValueError):
            writer(object())  # writing after close is an error

    def test_line_writer_shared_base(self):
        sink = io.StringIO()
        with BufferedLineWriter(sink, batch_size=2) as writer:
            writer.write_line('{"a":1}')
            writer.write_line('{"b":2}')
            writer.write_line('{"c":3}')
        assert sink.getvalue().splitlines() == \
            ['{"a":1}', '{"b":2}', '{"c":3}']
        assert writer.records == 3

    def test_cycle_constants_favor_buffering(self):
        assert BUFFERED_WRITE_CYCLES < DIRECT_WRITE_CYCLES

    def test_end_to_end_cost_difference(self):
        """The Section 5.3 advice, measurably: the same logging task
        has a higher zero-loss ceiling with the buffered writer."""
        traffic = CampusTrafficGenerator(seed=51).packets(duration=0.3,
                                                          gbps=0.1)
        ceilings = {}
        for writer_cls in (DirectRecordWriter, BufferedRecordWriter):
            sink = io.StringIO()
            writer = writer_cls(sink)
            runtime = Runtime(
                RuntimeConfig(cores=2,
                              callback_cycles=writer_cls.cycles),
                filter_str="tcp", datatype="connection",
                callback=writer,
            )
            stats = runtime.run(iter(traffic)).stats
            ceilings[writer_cls.__name__] = stats.max_zero_loss_gbps()
            if hasattr(writer, "close"):
                writer.close()
        assert ceilings["BufferedRecordWriter"] > \
            ceilings["DirectRecordWriter"]
