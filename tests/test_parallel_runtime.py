"""Parallel sharded backend: sequential/parallel equivalence.

The contract under test (ISSUE 1's determinism requirement): for a
fixed seed, the parallel backend produces **identical**
filter/connection/session/callback counts to the sequential backend,
because symmetric-RSS sharding makes per-core work order-independent
and ``process_batch`` charges stage costs per packet regardless of
batch boundaries.
"""

import json

import pytest

from repro import Runtime, RuntimeConfig
from repro.core.monitor import StatsMonitor
from repro.core.parallel import ParallelExecutionError
from repro.errors import ConfigError
from repro.traffic import CampusTrafficGenerator


def _campus(seed=21, duration=0.4, gbps=0.1):
    return list(CampusTrafficGenerator(seed=seed).packets(
        duration=duration, gbps=gbps))


def _run(traffic, parallel, cores=4, filter_str="tcp",
         datatype="connection", monitor=None, **config_kwargs):
    config = RuntimeConfig(cores=cores, parallel=parallel, **config_kwargs)
    runtime = Runtime(config, filter_str=filter_str, datatype=datatype,
                      callback=None)
    return runtime.run(iter(traffic), monitor=monitor)


#: to_dict() must match byte-for-byte between backends, including the
#: peak memory/connection figures: memory sampling is parent-clocked
#: (the feeder sends explicit sample points), so even the sample
#: series is identical.
def _comparable(stats):
    return stats.to_dict()


class TestParallelEquivalence:
    @pytest.fixture(scope="class")
    def traffic(self):
        return _campus()

    def test_connection_counts_identical(self, traffic):
        seq = _run(traffic, parallel=False).stats
        par = _run(traffic, parallel=True).stats
        assert _comparable(seq) == _comparable(par)

    def test_equivalence_across_worker_counts(self, traffic):
        baseline = None
        for cores in (1, 2, 4):
            seq = _run(traffic, parallel=False, cores=cores).stats
            par = _run(traffic, parallel=True, cores=cores).stats
            assert _comparable(seq) == _comparable(par), \
                f"backends diverged at {cores} cores"
            d = _comparable(par)
            # Totals are core-count-independent too (sharding only
            # redistributes work).
            totals = {k: d[k] for k in (
                "ingress_packets", "processed_packets", "callbacks",
                "sessions_parsed", "sessions_matched", "conns_created",
                "conns_delivered")}
            if baseline is None:
                baseline = totals
            else:
                assert totals == baseline

    def test_session_subscription_equivalent(self, traffic):
        seq = _run(traffic, parallel=False, filter_str="tls",
                   datatype="tls_handshake").stats
        par = _run(traffic, parallel=True, filter_str="tls",
                   datatype="tls_handshake").stats
        assert _comparable(seq) == _comparable(par)
        assert par.sessions_parsed > 0  # the comparison is not vacuous

    def test_packet_fast_path_equivalent(self, traffic):
        seq = _run(traffic, parallel=False, filter_str="",
                   datatype="packet").stats
        par = _run(traffic, parallel=True, filter_str="",
                   datatype="packet").stats
        assert _comparable(seq) == _comparable(par)
        assert par.callbacks > 0

    def test_batch_size_does_not_change_counts(self, traffic):
        base = _run(traffic, parallel=True).stats
        tiny = _run(traffic, parallel=True, parallel_batch_size=7).stats
        assert _comparable(base) == _comparable(tiny)

    def test_stats_json_roundtrip(self, traffic):
        """Merged parallel stats serialize like sequential ones."""
        par = _run(traffic, parallel=True).stats
        assert json.loads(json.dumps(par.to_dict())) == par.to_dict()

    def test_memory_samples_identical(self, traffic):
        """Parent-clocked sampling: the merged memory series matches
        the sequential one tuple-for-tuple, not just in shape."""
        seq = _run(traffic, parallel=False).stats
        par = _run(traffic, parallel=True).stats
        assert par.memory_samples
        assert par.memory_samples == seq.memory_samples
        timestamps = [t for t, _, _ in par.memory_samples]
        assert timestamps == sorted(timestamps)


class TestParallelBackendBehavior:
    def test_callback_counts_from_workers(self):
        traffic = _campus(seed=3, duration=0.2)
        par = _run(traffic, parallel=True, cores=2).stats
        seq = _run(traffic, parallel=False, cores=2).stats
        assert par.callbacks == seq.callbacks > 0

    def test_monitor_works_in_parallel_mode(self):
        traffic = _campus(seed=5, duration=1.0, gbps=0.05)
        monitor = StatsMonitor(interval=0.1)
        _run(traffic, parallel=True, cores=2, monitor=monitor)
        assert len(monitor.samples) >= 3
        assert sum(s.ingress_packets for s in monitor.samples) > 0

    def test_queued_callbacks_rejected(self):
        with pytest.raises(ConfigError):
            RuntimeConfig(parallel=True, callback_execution="queued")

    def test_empty_traffic(self):
        report = _run([], parallel=True, cores=2)
        assert report.stats.ingress_packets == 0
        assert not report.out_of_memory

    def test_worker_failure_surfaces(self):
        """A crashing callback in a worker must raise in the parent,
        not hang the feed loop."""
        def exploding(obj):
            raise RuntimeError("callback boom")

        traffic = _campus(seed=9, duration=0.2)
        config = RuntimeConfig(cores=2, parallel=True)
        runtime = Runtime(config, filter_str="", datatype="packet",
                          callback=exploding)
        with pytest.raises(ParallelExecutionError, match="callback boom"):
            runtime.run(iter(traffic))


class TestMonitorStride:
    def test_observe_calls_are_o_samples(self):
        """Regression: Runtime.run used to call monitor.observe once
        per packet; it must now be called O(samples) times."""
        calls = []

        class CountingMonitor(StatsMonitor):
            def observe(self, runtime, now):
                calls.append(now)
                super().observe(runtime, now)

        traffic = _campus(seed=11, duration=1.0, gbps=0.05)
        monitor = CountingMonitor(interval=0.1)
        _run(traffic, parallel=False, cores=2, monitor=monitor)
        # one observe per elapsed interval, plus the baseline call —
        # NOT one per packet (the dense head of the trace packs many
        # packets into each 0.1s interval).
        assert len(calls) <= len(monitor.samples) + 2
        assert len(calls) < len(traffic) / 2

    def test_monitor_samples_still_cover_run(self):
        traffic = _campus(seed=11, duration=1.0, gbps=0.05)
        monitor = StatsMonitor(interval=0.1)
        _run(traffic, parallel=False, cores=2, monitor=monitor)
        assert len(monitor.samples) >= 3
        spread = monitor.samples[-1].timestamp - monitor.samples[0].timestamp
        assert spread > 0.5


class TestSequentialBatching:
    def test_batch_size_invariant_sequentially(self):
        traffic = _campus(seed=13, duration=0.3)
        one = _run(traffic, parallel=False, parallel_batch_size=1).stats
        big = _run(traffic, parallel=False, parallel_batch_size=4096).stats
        assert _comparable(one) == _comparable(big)

    def test_process_batch_matches_per_packet(self):
        """CorePipeline.process_batch == a loop of process_packet."""
        from repro.core.pipeline import CorePipeline
        from repro.core.subscription import Subscription

        traffic = _campus(seed=15, duration=0.2)
        config = RuntimeConfig(cores=1)
        sub = Subscription("tcp", "connection", None)
        batched = CorePipeline(0, sub, config)
        unbatched = CorePipeline(0, sub, config)
        batched.process_batch(traffic)
        for mbuf in traffic:
            unbatched.process_packet(mbuf)
        assert batched.stats.ledger.snapshot() == \
            unbatched.stats.ledger.snapshot()
        assert batched.stats.callbacks == unbatched.stats.callbacks
        assert batched.stats.conns_created == unbatched.stats.conns_created
