"""Tests for the filter language: lexer, parser, AST validation, DNF."""

import ipaddress

import pytest

from repro.errors import FilterSemanticsError, FilterSyntaxError
from repro.filter import (
    And,
    MATCH_ALL,
    Op,
    Or,
    Pred,
    Predicate,
    expand_patterns,
    parse_filter,
    to_dnf,
)
from repro.filter.lexer import TokKind, tokenize


class TestLexer:
    def test_simple(self):
        kinds = [t.kind for t in tokenize("ipv4 and tcp.port >= 100")]
        assert kinds == [TokKind.ATOM, TokKind.AND, TokKind.ATOM,
                         TokKind.OP, TokKind.ATOM, TokKind.EOF]

    def test_string_with_escapes(self):
        tokens = tokenize(r"tls.sni = 'it\'s'")
        assert tokens[2].kind is TokKind.STRING
        assert tokens[2].text == "it's"

    def test_regex_body_survives(self):
        tokens = tokenize(r"tls.sni ~ '(.+?\.)?nflxvideo\.net'")
        assert tokens[2].text == r"(.+?\.)?nflxvideo\.net"

    def test_tilde_is_matches(self):
        assert tokenize("a.b ~ 'x'")[1].kind is TokKind.MATCHES

    def test_ipv6_cidr_atom(self):
        tokens = tokenize("ipv6.addr in 3::b/125")
        assert tokens[2].text == "3::b/125"

    def test_bad_char(self):
        with pytest.raises(FilterSyntaxError):
            tokenize("tcp.port = @#$")


class TestParser:
    def test_precedence_or_loosest(self):
        expr = parse_filter("ipv4 and tcp or udp")
        assert isinstance(expr, Or)
        assert isinstance(expr.operands[0], And)

    def test_parentheses(self):
        expr = parse_filter("ipv4 and (tcp or udp)")
        assert isinstance(expr, And)
        assert isinstance(expr.operands[1], Or)

    def test_unary(self):
        expr = parse_filter("tls")
        assert isinstance(expr, Pred)
        assert expr.predicate.is_unary

    def test_binary_ops(self):
        for text, op in [
            ("ipv4.ttl = 64", Op.EQ), ("ipv4.ttl != 64", Op.NE),
            ("ipv4.ttl < 64", Op.LT), ("ipv4.ttl <= 64", Op.LE),
            ("ipv4.ttl > 64", Op.GT), ("ipv4.ttl >= 64", Op.GE),
        ]:
            expr = parse_filter(text)
            assert expr.predicate.op is op
            assert expr.predicate.value == 64

    def test_range_value(self):
        expr = parse_filter("tcp.port in 80..100")
        assert expr.predicate.value == (80, 100)

    def test_cidr_value(self):
        expr = parse_filter("ipv4.addr in 10.0.0.0/8")
        assert expr.predicate.value == ipaddress.ip_network("10.0.0.0/8")

    def test_ip_value(self):
        expr = parse_filter("ipv4.src_addr = 1.2.3.4")
        assert expr.predicate.value == ipaddress.ip_address("1.2.3.4")

    def test_ipv6_cidr(self):
        expr = parse_filter("ipv6.addr in 3::b/125")
        assert expr.predicate.value == ipaddress.ip_network("3::b/125",
                                                            strict=False)

    def test_matches_regex(self):
        expr = parse_filter("http.user_agent matches 'Firefox'")
        assert expr.predicate.op is Op.MATCHES

    def test_empty_is_match_all(self):
        assert parse_filter("") == MATCH_ALL
        assert parse_filter("   ") == MATCH_ALL

    def test_table1_examples(self):
        """All four example filters from Table 1 parse."""
        for text in [
            "ipv4.ttl > 64",
            "ipv4 and (tls or ssh)",
            "ipv6.addr in 3::b/125 and tcp",
            "http.user_agent matches 'Firefox'",
        ]:
            parse_filter(text)

    # -- error cases --------------------------------------------------------
    def test_unknown_protocol(self):
        with pytest.raises(FilterSemanticsError):
            parse_filter("mqtt")

    def test_unknown_field(self):
        with pytest.raises(FilterSemanticsError):
            parse_filter("tcp.bogus = 1")

    def test_type_mismatch_string_lt(self):
        with pytest.raises(FilterSemanticsError):
            parse_filter("tls.sni < 'abc'")

    def test_regex_on_int_field(self):
        with pytest.raises(FilterSemanticsError):
            parse_filter("tcp.port ~ '44.'")

    def test_int_field_needs_int(self):
        with pytest.raises(FilterSemanticsError):
            parse_filter("tcp.port = 'https'")

    def test_bad_regex_rejected(self):
        with pytest.raises(FilterSemanticsError):
            parse_filter("tls.sni ~ '('")

    def test_v6_literal_on_v4_field(self):
        with pytest.raises(FilterSemanticsError):
            parse_filter("ipv4.addr = ::1")

    def test_unary_with_operator(self):
        with pytest.raises(FilterSyntaxError):
            parse_filter("ipv4 = 4")

    def test_field_without_operator(self):
        with pytest.raises(FilterSyntaxError):
            parse_filter("tcp.port and ipv4")

    def test_dangling_and(self):
        with pytest.raises(FilterSyntaxError):
            parse_filter("ipv4 and")

    def test_unbalanced_paren(self):
        with pytest.raises(FilterSyntaxError):
            parse_filter("(ipv4 and tcp")

    def test_empty_range(self):
        with pytest.raises(FilterSyntaxError):
            parse_filter("tcp.port in 100..80")

    def test_unquoted_string(self):
        with pytest.raises(FilterSyntaxError):
            parse_filter("tls.sni = netflix..com..bad")


class TestDnf:
    def test_distribution(self):
        expr = parse_filter("ipv4 and (tls or ssh)")
        patterns = to_dnf(expr)
        assert len(patterns) == 2
        assert all(str(p[0]) == "ipv4" for p in patterns)

    def test_nested_distribution(self):
        expr = parse_filter("(ipv4 or ipv6) and (tcp.port = 1 or tcp.port = 2)")
        assert len(to_dnf(expr)) == 4

    def test_expansion_adds_chain(self):
        patterns = expand_patterns(parse_filter("http"))
        # http over tcp over {ipv4, ipv6}
        assert len(patterns) == 2
        chains = {tuple(str(p) for p in pat) for pat in patterns}
        assert ("eth", "ipv4", "tcp", "http") in chains
        assert ("eth", "ipv6", "tcp", "http") in chains

    def test_expansion_dns_two_transports(self):
        patterns = expand_patterns(parse_filter("dns and ipv4"))
        chains = {tuple(str(p) for p in pat) for pat in patterns}
        assert ("eth", "ipv4", "udp", "dns") in chains
        assert ("eth", "ipv4", "tcp", "dns") in chains

    def test_session_field_implies_protocol(self):
        patterns = expand_patterns(parse_filter("tls.sni ~ 'x' and ipv4"))
        assert [str(p) for p in patterns[0]] == [
            "eth", "ipv4", "tcp", "tls", "tls.sni ~ 'x'"
        ]

    def test_contradiction_pruned(self):
        patterns = expand_patterns(parse_filter("(ipv4 and ipv6) or tcp"))
        # ipv4-and-ipv6 pattern dropped; tcp expands to two chains
        assert len(patterns) == 2

    def test_all_contradictory_raises(self):
        with pytest.raises(FilterSemanticsError):
            expand_patterns(parse_filter("ipv4 and ipv6"))

    def test_two_app_protocols_contradictory(self):
        with pytest.raises(FilterSemanticsError):
            expand_patterns(parse_filter("tls and http"))

    def test_match_all(self):
        assert expand_patterns(MATCH_ALL) == [[]]

    def test_binary_transport_pred_forces_transport(self):
        patterns = expand_patterns(parse_filter("tcp.port = 443"))
        chains = {tuple(str(p) for p in pat) for pat in patterns}
        assert ("eth", "ipv4", "tcp", "tcp.port = 443") in chains
        assert ("eth", "ipv6", "tcp", "tcp.port = 443") in chains

    def test_duplicate_predicates_deduped(self):
        patterns = expand_patterns(parse_filter("tcp and tcp and ipv4"))
        assert [str(p) for p in patterns[0]] == ["eth", "ipv4", "tcp"]
