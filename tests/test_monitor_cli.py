"""Tests for the Section 5.3 monitor and the command-line interface."""

import pytest

from repro import Runtime, RuntimeConfig
from repro.cli import main
from repro.core.monitor import MonitorSample, StatsMonitor
from repro.traffic import CampusTrafficGenerator, FlowSpec, tls_flow, \
    write_pcap


class TestStatsMonitor:
    def _run_with_monitor(self, interval=0.1, **config_kwargs):
        monitor = StatsMonitor(interval=interval)
        runtime = Runtime(
            RuntimeConfig(cores=2, **config_kwargs),
            filter_str="",
            datatype="connection",
            callback=lambda r: None,
        )
        traffic = CampusTrafficGenerator(seed=17).packets(duration=1.0,
                                                          gbps=0.05)
        runtime.run(iter(traffic), monitor=monitor)
        return monitor

    def test_samples_collected(self):
        monitor = self._run_with_monitor()
        assert len(monitor.samples) >= 3
        timestamps = [s.timestamp for s in monitor.samples]
        assert timestamps == sorted(timestamps)

    def test_sample_contents(self):
        monitor = self._run_with_monitor()
        total_pkts = sum(s.ingress_packets for s in monitor.samples)
        assert total_pkts > 0
        assert all(s.interval_gbps >= 0 for s in monitor.samples)
        assert all(s.live_connections >= 0 for s in monitor.samples)

    def test_emit_callback(self):
        lines = []
        monitor = StatsMonitor(interval=0.1, emit=lines.append)
        runtime = Runtime(RuntimeConfig(cores=1), filter_str="",
                          datatype="packet", callback=None)
        traffic = CampusTrafficGenerator(seed=18).packets(duration=0.5,
                                                          gbps=0.05)
        runtime.run(iter(traffic), monitor=monitor)
        assert lines
        assert "Gbps" in lines[0]

    def test_loss_signal(self):
        """A hugely expensive per-packet callback overloads the core;
        the monitor's loss signal must fire (Section 5.3's feedback)."""
        from repro.traffic import CampusProfile
        monitor = StatsMonitor(interval=0.1)
        runtime = Runtime(
            RuntimeConfig(cores=1, callback_cycles=5e8),
            filter_str="", datatype="packet", callback=None,
        )
        # No long-lived stretched flows: keep the trace dense so every
        # monitoring interval carries load.
        profile = CampusProfile(long_lived_fraction=0.0)
        traffic = CampusTrafficGenerator(seed=18, profile=profile).packets(
            duration=0.5, gbps=0.05)
        runtime.run(iter(traffic), monitor=monitor)
        assert monitor.sustained_loss
        assert any(s.loss_fraction > 0.5 for s in monitor.samples)

    def test_no_loss_when_light(self):
        monitor = self._run_with_monitor()
        assert not monitor.sustained_loss

    def test_format_and_log_lines(self):
        monitor = self._run_with_monitor()
        lines = monitor.log_lines()
        assert len(lines) == len(monitor.samples)
        assert all("conns=" in line for line in lines)

    def test_bad_interval(self):
        with pytest.raises(ValueError):
            StatsMonitor(interval=0)


class TestCli:
    def test_describe_filter(self, capsys):
        assert main(["--describe-filter", "tcp.port = 443 and tls"]) == 0
        out = capsys.readouterr().out
        assert "trie:" in out
        assert "ETH-IPV4-TCP" in out
        assert "def packet_filter" in out

    def test_describe_bad_filter(self, capsys):
        assert main(["--describe-filter", "bogus.field = 1"]) == 2
        assert "filter error" in capsys.readouterr().err

    def test_pcap_run(self, tmp_path, capsys):
        path = tmp_path / "t.pcap"
        write_pcap(path, tls_flow(
            FlowSpec("10.0.0.1", "1.2.3.4", 999, 443), "cli.example.com"))
        code = main(["--pcap", str(path), "--filter", "tls",
                     "--datatype", "tls_handshake", "--cores", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sni=cli.example.com" in out
        assert "zero-loss ceiling" in out

    def test_synthetic_run_with_monitor(self, capsys):
        code = main(["--synthetic", "campus", "--duration", "0.3",
                     "--gbps", "0.05", "--datatype", "connection",
                     "--print-limit", "2", "--monitor", "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ConnectionRecord" in out
        assert "Gbps" in out

    def test_bad_config(self, capsys):
        code = main(["--cores", "0", "--synthetic", "campus"])
        assert code == 2

    def test_print_limit_zero(self, capsys):
        code = main(["--synthetic", "campus", "--duration", "0.2",
                     "--gbps", "0.05", "--print-limit", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "RawPacket" not in out


class TestFlagValidation:
    """Conflicting-flag combinations fail fast with actionable errors
    (exit code 2, remediation in the message) instead of surprising
    behavior deep in a run."""

    def test_overload_vs_memory_policy_conflict(self, capsys):
        code = main(["--synthetic", "campus", "--duration", "0.1",
                     "--overload-policy", "ladder",
                     "--memory-policy", "shed"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--overload-policy ladder" in err
        assert "--memory-policy shed" in err
        assert "drop --memory-policy" in err

    def test_overload_vs_memory_evict_conflict(self, capsys):
        code = main(["--synthetic", "campus", "--duration", "0.1",
                     "--overload-policy", "failfast",
                     "--memory-policy", "evict"])
        assert code == 2
        assert "conflicts" in capsys.readouterr().err

    def test_memory_record_is_compatible(self, capsys):
        code = main(["--synthetic", "campus", "--duration", "0.1",
                     "--gbps", "0.02", "--print-limit", "0",
                     "--overload-policy", "ladder",
                     "--memory-policy", "record"])
        assert code == 0

    def test_supervise_requires_parallel(self, capsys):
        code = main(["--synthetic", "campus", "--duration", "0.1",
                     "--supervise"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--supervise requires --parallel" in err
        assert "--parallel 2" in err  # the remediation

    def test_nonpositive_target_lag(self, capsys):
        code = main(["--synthetic", "campus", "--duration", "0.1",
                     "--overload-policy", "ladder",
                     "--overload-target-lag", "0"])
        assert code == 2
        assert "--overload-target-lag" in capsys.readouterr().err

    def test_burst_intensity_below_one(self, capsys):
        code = main(["--synthetic", "burst", "--duration", "0.1",
                     "--burst-intensity", "0.5"])
        assert code == 2
        assert "--burst-intensity" in capsys.readouterr().err

    def test_trace_sample_without_trace_out(self, capsys):
        code = main(["--synthetic", "campus", "--duration", "0.1",
                     "--trace-sample", "0.5"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--trace-sample" in err
        assert "--trace-out" in err  # the remediation

    def test_nonpositive_span_sample(self, tmp_path, capsys):
        code = main(["--synthetic", "campus", "--duration", "0.1",
                     "--spans-out", str(tmp_path / "s.json"),
                     "--span-sample", "0"])
        assert code == 2
        assert "--span-sample must be >= 1" in capsys.readouterr().err

    def test_span_sample_without_span_output(self, capsys):
        code = main(["--synthetic", "campus", "--duration", "0.1",
                     "--span-sample", "2"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--span-sample" in err
        assert "--spans-out" in err  # the remediation

    def test_nonpositive_flight_depth(self, tmp_path, capsys):
        code = main(["--synthetic", "campus", "--duration", "0.1",
                     "--flight-out", str(tmp_path / "f.json"),
                     "--flight-recorder-depth", "-1"])
        assert code == 2
        assert "--flight-recorder-depth must be >= 1" in \
            capsys.readouterr().err

    def test_flight_depth_without_flight_out(self, capsys):
        code = main(["--synthetic", "campus", "--duration", "0.1",
                     "--flight-recorder-depth", "4"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--flight-recorder-depth" in err
        assert "--flight-out" in err  # the remediation

    def test_span_flags_compatible_combo(self, tmp_path, capsys):
        code = main(["--synthetic", "campus", "--duration", "0.1",
                     "--gbps", "0.02", "--print-limit", "0",
                     "--spans-out", str(tmp_path / "s.json"),
                     "--flight-out", str(tmp_path / "f.json"),
                     "--span-sample", "2",
                     "--flight-recorder-depth", "4"])
        assert code == 0
        assert (tmp_path / "s.json").exists()
        assert (tmp_path / "f.json").exists()


class TestOverloadCli:
    def test_burst_ladder_run(self, tmp_path, capsys):
        """End-to-end CLI: burst traffic under the ladder, loss ledger
        summary printed and NDJSON/metrics artifacts written."""
        import json
        ledger_out = tmp_path / "overload.ndjson"
        metrics_out = tmp_path / "metrics.prom"
        code = main(["--synthetic", "burst", "--duration", "0.3",
                     "--gbps", "0.02", "--seed", "3",
                     "--print-limit", "0", "--datatype", "connection",
                     "--overload-policy", "ladder",
                     "--overload-out", str(ledger_out),
                     "--metrics-out", str(metrics_out)])
        assert code == 0
        out = capsys.readouterr().out
        assert "overload:" in out
        assert "overload records written" in out
        lines = [json.loads(l) for l in
                 ledger_out.read_text().splitlines() if l]
        assert any(r.get("event") == "summary" for r in lines)
        assert "repro_overload_failfast 0" in metrics_out.read_text()

    def test_off_policy_prints_no_overload(self, capsys):
        code = main(["--synthetic", "burst", "--duration", "0.2",
                     "--gbps", "0.02", "--print-limit", "0"])
        assert code == 0
        assert "overload:" not in capsys.readouterr().out


class TestJsonStats:
    def test_json_stats_written(self, tmp_path, capsys):
        import json
        out = tmp_path / "stats.json"
        code = main(["--synthetic", "campus", "--duration", "0.2",
                     "--gbps", "0.05", "--print-limit", "0",
                     "--json-stats", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["ingress_packets"] > 0
        assert "max_zero_loss_gbps" in payload
        assert set(payload["stage_invocations"]) >= {"capture",
                                                     "packet_filter"}
