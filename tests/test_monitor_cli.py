"""Tests for the Section 5.3 monitor and the command-line interface."""

import pytest

from repro import Runtime, RuntimeConfig
from repro.cli import main
from repro.core.monitor import MonitorSample, StatsMonitor
from repro.traffic import CampusTrafficGenerator, FlowSpec, tls_flow, \
    write_pcap


class TestStatsMonitor:
    def _run_with_monitor(self, interval=0.1, **config_kwargs):
        monitor = StatsMonitor(interval=interval)
        runtime = Runtime(
            RuntimeConfig(cores=2, **config_kwargs),
            filter_str="",
            datatype="connection",
            callback=lambda r: None,
        )
        traffic = CampusTrafficGenerator(seed=17).packets(duration=1.0,
                                                          gbps=0.05)
        runtime.run(iter(traffic), monitor=monitor)
        return monitor

    def test_samples_collected(self):
        monitor = self._run_with_monitor()
        assert len(monitor.samples) >= 3
        timestamps = [s.timestamp for s in monitor.samples]
        assert timestamps == sorted(timestamps)

    def test_sample_contents(self):
        monitor = self._run_with_monitor()
        total_pkts = sum(s.ingress_packets for s in monitor.samples)
        assert total_pkts > 0
        assert all(s.interval_gbps >= 0 for s in monitor.samples)
        assert all(s.live_connections >= 0 for s in monitor.samples)

    def test_emit_callback(self):
        lines = []
        monitor = StatsMonitor(interval=0.1, emit=lines.append)
        runtime = Runtime(RuntimeConfig(cores=1), filter_str="",
                          datatype="packet", callback=None)
        traffic = CampusTrafficGenerator(seed=18).packets(duration=0.5,
                                                          gbps=0.05)
        runtime.run(iter(traffic), monitor=monitor)
        assert lines
        assert "Gbps" in lines[0]

    def test_loss_signal(self):
        """A hugely expensive per-packet callback overloads the core;
        the monitor's loss signal must fire (Section 5.3's feedback)."""
        from repro.traffic import CampusProfile
        monitor = StatsMonitor(interval=0.1)
        runtime = Runtime(
            RuntimeConfig(cores=1, callback_cycles=5e8),
            filter_str="", datatype="packet", callback=None,
        )
        # No long-lived stretched flows: keep the trace dense so every
        # monitoring interval carries load.
        profile = CampusProfile(long_lived_fraction=0.0)
        traffic = CampusTrafficGenerator(seed=18, profile=profile).packets(
            duration=0.5, gbps=0.05)
        runtime.run(iter(traffic), monitor=monitor)
        assert monitor.sustained_loss
        assert any(s.loss_fraction > 0.5 for s in monitor.samples)

    def test_no_loss_when_light(self):
        monitor = self._run_with_monitor()
        assert not monitor.sustained_loss

    def test_format_and_log_lines(self):
        monitor = self._run_with_monitor()
        lines = monitor.log_lines()
        assert len(lines) == len(monitor.samples)
        assert all("conns=" in line for line in lines)

    def test_bad_interval(self):
        with pytest.raises(ValueError):
            StatsMonitor(interval=0)


class TestCli:
    def test_describe_filter(self, capsys):
        assert main(["--describe-filter", "tcp.port = 443 and tls"]) == 0
        out = capsys.readouterr().out
        assert "trie:" in out
        assert "ETH-IPV4-TCP" in out
        assert "def packet_filter" in out

    def test_describe_bad_filter(self, capsys):
        assert main(["--describe-filter", "bogus.field = 1"]) == 2
        assert "filter error" in capsys.readouterr().err

    def test_pcap_run(self, tmp_path, capsys):
        path = tmp_path / "t.pcap"
        write_pcap(path, tls_flow(
            FlowSpec("10.0.0.1", "1.2.3.4", 999, 443), "cli.example.com"))
        code = main(["--pcap", str(path), "--filter", "tls",
                     "--datatype", "tls_handshake", "--cores", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sni=cli.example.com" in out
        assert "zero-loss ceiling" in out

    def test_synthetic_run_with_monitor(self, capsys):
        code = main(["--synthetic", "campus", "--duration", "0.3",
                     "--gbps", "0.05", "--datatype", "connection",
                     "--print-limit", "2", "--monitor", "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ConnectionRecord" in out
        assert "Gbps" in out

    def test_bad_config(self, capsys):
        code = main(["--cores", "0", "--synthetic", "campus"])
        assert code == 2

    def test_print_limit_zero(self, capsys):
        code = main(["--synthetic", "campus", "--duration", "0.2",
                     "--gbps", "0.05", "--print-limit", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "RawPacket" not in out


class TestFlagValidation:
    """Conflicting-flag combinations fail fast with actionable errors
    (exit code 2, remediation in the message) instead of surprising
    behavior deep in a run."""

    def test_overload_vs_memory_policy_conflict(self, capsys):
        code = main(["--synthetic", "campus", "--duration", "0.1",
                     "--overload-policy", "ladder",
                     "--memory-policy", "shed"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--overload-policy ladder" in err
        assert "--memory-policy shed" in err
        assert "drop --memory-policy" in err

    def test_overload_vs_memory_evict_conflict(self, capsys):
        code = main(["--synthetic", "campus", "--duration", "0.1",
                     "--overload-policy", "failfast",
                     "--memory-policy", "evict"])
        assert code == 2
        assert "conflicts" in capsys.readouterr().err

    def test_memory_record_is_compatible(self, capsys):
        code = main(["--synthetic", "campus", "--duration", "0.1",
                     "--gbps", "0.02", "--print-limit", "0",
                     "--overload-policy", "ladder",
                     "--memory-policy", "record"])
        assert code == 0

    def test_supervise_requires_parallel(self, capsys):
        code = main(["--synthetic", "campus", "--duration", "0.1",
                     "--supervise"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--supervise requires --parallel" in err
        assert "--parallel 2" in err  # the remediation

    def test_nonpositive_target_lag(self, capsys):
        code = main(["--synthetic", "campus", "--duration", "0.1",
                     "--overload-policy", "ladder",
                     "--overload-target-lag", "0"])
        assert code == 2
        assert "--overload-target-lag" in capsys.readouterr().err

    def test_burst_intensity_below_one(self, capsys):
        code = main(["--synthetic", "burst", "--duration", "0.1",
                     "--burst-intensity", "0.5"])
        assert code == 2
        assert "--burst-intensity" in capsys.readouterr().err

    def test_trace_sample_without_trace_out(self, capsys):
        code = main(["--synthetic", "campus", "--duration", "0.1",
                     "--trace-sample", "0.5"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--trace-sample" in err
        assert "--trace-out" in err  # the remediation

    def test_nonpositive_span_sample(self, tmp_path, capsys):
        code = main(["--synthetic", "campus", "--duration", "0.1",
                     "--spans-out", str(tmp_path / "s.json"),
                     "--span-sample", "0"])
        assert code == 2
        assert "--span-sample must be >= 1" in capsys.readouterr().err

    def test_span_sample_without_span_output(self, capsys):
        code = main(["--synthetic", "campus", "--duration", "0.1",
                     "--span-sample", "2"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--span-sample" in err
        assert "--spans-out" in err  # the remediation

    def test_nonpositive_flight_depth(self, tmp_path, capsys):
        code = main(["--synthetic", "campus", "--duration", "0.1",
                     "--flight-out", str(tmp_path / "f.json"),
                     "--flight-recorder-depth", "-1"])
        assert code == 2
        assert "--flight-recorder-depth must be >= 1" in \
            capsys.readouterr().err

    def test_flight_depth_without_flight_out(self, capsys):
        code = main(["--synthetic", "campus", "--duration", "0.1",
                     "--flight-recorder-depth", "4"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--flight-recorder-depth" in err
        assert "--flight-out" in err  # the remediation

    def test_span_flags_compatible_combo(self, tmp_path, capsys):
        code = main(["--synthetic", "campus", "--duration", "0.1",
                     "--gbps", "0.02", "--print-limit", "0",
                     "--spans-out", str(tmp_path / "s.json"),
                     "--flight-out", str(tmp_path / "f.json"),
                     "--span-sample", "2",
                     "--flight-recorder-depth", "4"])
        assert code == 0
        assert (tmp_path / "s.json").exists()
        assert (tmp_path / "f.json").exists()


class TestOverloadCli:
    def test_burst_ladder_run(self, tmp_path, capsys):
        """End-to-end CLI: burst traffic under the ladder, loss ledger
        summary printed and NDJSON/metrics artifacts written."""
        import json
        ledger_out = tmp_path / "overload.ndjson"
        metrics_out = tmp_path / "metrics.prom"
        code = main(["--synthetic", "burst", "--duration", "0.3",
                     "--gbps", "0.02", "--seed", "3",
                     "--print-limit", "0", "--datatype", "connection",
                     "--overload-policy", "ladder",
                     "--overload-out", str(ledger_out),
                     "--metrics-out", str(metrics_out)])
        assert code == 0
        out = capsys.readouterr().out
        assert "overload:" in out
        assert "overload records written" in out
        lines = [json.loads(l) for l in
                 ledger_out.read_text().splitlines() if l]
        assert any(r.get("event") == "summary" for r in lines)
        assert "repro_overload_failfast 0" in metrics_out.read_text()

    def test_off_policy_prints_no_overload(self, capsys):
        code = main(["--synthetic", "burst", "--duration", "0.2",
                     "--gbps", "0.02", "--print-limit", "0"])
        assert code == 0
        assert "overload:" not in capsys.readouterr().out


class TestImpairFlagValidation:
    """--impair-* combinations fail fast with exit 2 and a remediation
    (the span-flag validation pattern)."""

    BASE = ["--synthetic", "campus", "--duration", "0.1",
            "--gbps", "0.02", "--print-limit", "0"]

    def test_impair_conflicts_with_packet_faults(self, tmp_path,
                                                 capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(
            '{"faults": [{"kind": "corrupt_packet", "at_packet": 5}]}')
        code = main(self.BASE + ["--impair-loss", "0.1",
                                 "--fault-plan", str(plan)])
        assert code == 2
        err = capsys.readouterr().err
        assert "--impair-" in err
        assert "--fault-plan" in err
        assert "--impair-corrupt" in err  # the remediation

    def test_impair_with_non_packet_fault_plan_ok(self, tmp_path,
                                                  capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(
            '{"faults": [{"kind": "callback_error", "at_ordinal": 5}]}')
        code = main(self.BASE + ["--impair-loss", "0.1",
                                 "--fault-plan", str(plan)])
        assert code == 0

    def test_trace_conflicts_with_model_flags(self, capsys):
        code = main(self.BASE + ["--impair-trace", "x.trace",
                                 "--impair-loss", "0.1"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--impair-trace" in err
        assert "drop the model flags" in err

    def test_record_conflicts_with_trace(self, capsys):
        code = main(self.BASE + ["--impair-trace", "x.trace",
                                 "--impair-record", "y.trace"])
        assert code == 2
        assert "--impair-record" in capsys.readouterr().err

    def test_reorder_depth_without_reorder(self, capsys):
        code = main(self.BASE + ["--impair-reorder-depth", "4"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--impair-reorder-depth" in err
        assert "--impair-reorder" in err  # the remediation

    def test_repair_flags_without_threshold(self, capsys):
        code = main(self.BASE + ["--impair-repair-time", "0.1"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--impair-disable-threshold" in err

    def test_impair_out_without_impairment(self, tmp_path, capsys):
        code = main(self.BASE + ["--impair-out",
                                 str(tmp_path / "i.ndjson")])
        assert code == 2
        err = capsys.readouterr().err
        assert "--impair-out" in err
        assert "--impair-loss" in err  # the remediation

    def test_bad_rate_rejected(self, capsys):
        code = main(self.BASE + ["--impair-loss", "1.5"])
        assert code == 2
        assert "loss_rate" in capsys.readouterr().err

    def test_bad_burst_spec_rejected(self, capsys):
        code = main(self.BASE + ["--impair-burst", "0.1"])
        assert code == 2
        assert "Gilbert-Elliott" in capsys.readouterr().err

    def test_corrupt_silent_without_corrupt(self, capsys):
        code = main(self.BASE + ["--impair-corrupt-silent"])
        assert code == 2
        assert "corrupt_silent" in capsys.readouterr().err


class TestImpairCli:
    def test_degraded_link_run_end_to_end(self, tmp_path, capsys):
        """A seeded Gilbert-Elliott scenario with quarantine and
        disable-and-repair: ledger summary printed, NDJSON and metrics
        artifacts written and balanced."""
        import json
        impair_out = tmp_path / "impair.ndjson"
        metrics_out = tmp_path / "metrics.prom"
        code = main(["--synthetic", "campus", "--duration", "0.15",
                     "--gbps", "0.05", "--seed", "3",
                     "--print-limit", "0", "--datatype", "connection",
                     "--impair-burst", "0.02,0.3",
                     "--impair-corrupt", "0.05",
                     "--impair-quarantine",
                     "--impair-disable-threshold", "3",
                     "--impair-disable-window", "64",
                     "--impair-repair-time", "0.02",
                     "--impair-adaptive-reassembly",
                     "--impair-out", str(impair_out),
                     "--metrics-out", str(metrics_out)])
        assert code == 0
        out = capsys.readouterr().out
        assert "impairment:" in out
        assert "impairment records written" in out
        lines = [json.loads(l) for l in
                 impair_out.read_text().splitlines() if l]
        assert lines[0]["event"] == "totals"
        summary = lines[-1]
        assert summary["event"] == "summary"
        assert summary["balanced"] is True
        assert "repro_impair_offered_packets_total" in \
            metrics_out.read_text()

    def test_record_and_replay_round_trip(self, tmp_path, capsys):
        import json
        trace = tmp_path / "link.trace"
        stats_a = tmp_path / "a.json"
        stats_b = tmp_path / "b.json"
        base = ["--synthetic", "campus", "--duration", "0.1",
                "--gbps", "0.05", "--print-limit", "0",
                "--datatype", "connection"]
        assert main(base + ["--impair-loss", "0.1",
                            "--impair-corrupt", "0.05",
                            "--impair-record", str(trace),
                            "--json-stats", str(stats_a)]) == 0
        assert trace.read_text().startswith("#repro-impair-trace")
        assert main(base + ["--impair-trace", str(trace),
                            "--impair-seed", "999",
                            "--json-stats", str(stats_b)]) == 0
        assert json.loads(stats_a.read_text()) == \
            json.loads(stats_b.read_text())

    def test_clean_run_prints_no_impairment(self, capsys):
        code = main(["--synthetic", "campus", "--duration", "0.1",
                     "--gbps", "0.02", "--print-limit", "0"])
        assert code == 0
        assert "impairment:" not in capsys.readouterr().out


class TestJsonStats:
    def test_json_stats_written(self, tmp_path, capsys):
        import json
        out = tmp_path / "stats.json"
        code = main(["--synthetic", "campus", "--duration", "0.2",
                     "--gbps", "0.05", "--print-limit", "0",
                     "--json-stats", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["ingress_packets"] > 0
        assert "max_zero_loss_gbps" in payload
        assert set(payload["stage_invocations"]) >= {"capture",
                                                     "packet_filter"}


class TestTenancyCli:
    def _subs(self, tmp_path, entries=None):
        import json
        if entries is None:
            entries = [
                {"name": "web", "filter": "tcp.dst_port = 443",
                 "datatype": "connection", "callback": "count"},
                {"name": "dns", "filter": "udp", "datatype": "packet"},
                {"name": "late", "filter": "tcp",
                 "datatype": "connection", "start": False},
            ]
        path = tmp_path / "subs.json"
        path.write_text(json.dumps({"tenants": entries}))
        return str(path)

    def test_multitenant_reconfigure_run(self, tmp_path, capsys):
        import json
        out = tmp_path / "tenants.json"
        code = main(["--subscriptions", self._subs(tmp_path),
                     "--synthetic", "campus", "--duration", "0.3",
                     "--gbps", "0.05", "--print-limit", "0",
                     "--reconfigure-at", "0.15:drop:dns",
                     "--reconfigure-at", "0.15:add:late",
                     "--tenants-out", str(out)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "tenants: 3 seen, epoch 2" in stdout
        payload = json.loads(out.read_text())
        assert payload["epoch"] == 2
        assert payload["active"] == ["web", "late"]
        assert set(payload["tenants"]) == {"web", "dns", "late"}
        assert payload["tenants"]["web"]["stats"]["callbacks"] > 0

    def test_subscriptions_conflicts_with_filter(self, tmp_path,
                                                 capsys):
        code = main(["--subscriptions", self._subs(tmp_path),
                     "--filter", "tcp", "--synthetic", "campus"])
        assert code == 2
        assert "--subscriptions conflicts with --filter" in \
            capsys.readouterr().err

    def test_reconfigure_requires_subscriptions(self, capsys):
        code = main(["--synthetic", "campus",
                     "--reconfigure-at", "0.1:drop:dns"])
        assert code == 2
        assert "--reconfigure-at has no effect without" in \
            capsys.readouterr().err

    def test_tenants_out_requires_subscriptions(self, tmp_path,
                                                capsys):
        code = main(["--synthetic", "campus",
                     "--tenants-out", str(tmp_path / "t.json")])
        assert code == 2
        assert "--tenants-out has no effect" in capsys.readouterr().err

    def test_malformed_reconfigure_spec(self, tmp_path, capsys):
        code = main(["--subscriptions", self._subs(tmp_path),
                     "--synthetic", "campus",
                     "--reconfigure-at", "whenever:drop:dns"])
        assert code == 2
        assert "virtual-time float" in capsys.readouterr().err

    def test_unknown_event_tenant(self, tmp_path, capsys):
        code = main(["--subscriptions", self._subs(tmp_path),
                     "--synthetic", "campus",
                     "--reconfigure-at", "0.1:drop:nope"])
        assert code == 2
        assert "unknown tenant" in capsys.readouterr().err

    def test_nonworker_fault_plan_conflict(self, tmp_path, capsys):
        plan = ('{"seed": 1, "faults": '
                '[{"kind": "callback_error", "at_ordinal": 0}]}')
        code = main(["--subscriptions", self._subs(tmp_path),
                     "--synthetic", "campus", "--fault-plan", plan])
        assert code == 2
        assert "non-worker --fault-plan" in capsys.readouterr().err

    def test_worker_fault_plan_allowed(self, tmp_path, capsys):
        plan = ('{"seed": 1, "faults": '
                '[{"kind": "worker_crash", "core": 1, "at_batch": 1}]}')
        code = main(["--subscriptions", self._subs(tmp_path),
                     "--synthetic", "campus", "--duration", "0.2",
                     "--gbps", "0.05", "--print-limit", "0",
                     "--parallel", "2", "--supervise",
                     "--fault-plan", plan])
        assert code == 0

    def test_bad_subscriptions_json(self, tmp_path, capsys):
        path = tmp_path / "subs.json"
        path.write_text("[{\"filter\": \"tcp\"}]")
        code = main(["--subscriptions", str(path),
                     "--synthetic", "campus"])
        assert code == 2
        assert "needs a string 'name'" in capsys.readouterr().err
