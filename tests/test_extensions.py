"""Tests for the extension features: IPv4 fragment reassembly, HTTP
chunked transfer-encoding, TLS certificate-chain parsing, service
identification, and the traffic profiler."""

import pytest

from repro import Runtime, RuntimeConfig
from repro.analysis import TrafficProfiler
from repro.packet import Mbuf, build_tcp_packet, build_udp_packet, \
    parse_stack
from repro.packet.fragments import FragmentReassembler, fragment_ipv4
from repro.protocols import HttpParser, ParseResult, TlsParser
from repro.stream.pdu import StreamSegment
from repro.traffic import (
    CampusTrafficGenerator,
    FlowSpec,
    dns_flow,
    http_flow,
    ssh_flow,
    tls_flow,
)


def seg(payload, from_orig=True):
    return StreamSegment(payload, from_orig, 0.0)


class TestFragmentation:
    def _big_frame(self, payload=b"Z" * 4000):
        return build_tcp_packet("10.0.0.1", "171.64.2.2", 1234, 443,
                                payload=payload)

    def test_fragment_builder(self):
        fragments = fragment_ipv4(self._big_frame(), fragment_payload=1208)
        assert len(fragments) == 4
        first = parse_stack(Mbuf(fragments[0]))
        later = parse_stack(Mbuf(fragments[1]))
        assert first.tcp is not None  # transport header in fragment 0
        assert later.tcp is None      # ports invisible in the rest
        assert later.ip.fragment_offset() == 1208 // 8

    def test_small_frame_untouched(self):
        frame = build_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2, b"small")
        assert fragment_ipv4(frame) == [frame]

    def test_multiple_of_eight_enforced(self):
        with pytest.raises(ValueError):
            fragment_ipv4(self._big_frame(), fragment_payload=1001)

    def test_reassembly_round_trip(self):
        frame = self._big_frame(payload=bytes(range(256)) * 12)
        reassembler = FragmentReassembler()
        result = None
        for fragment in fragment_ipv4(frame, 1208):
            result = reassembler.push(Mbuf(fragment))
        assert result is not None
        # Payload identical; flags/checksum rewritten.
        original = parse_stack(Mbuf(frame))
        rebuilt = parse_stack(result)
        assert rebuilt.l4_payload() == original.l4_payload()
        assert rebuilt.tcp.dst_port() == 443
        assert reassembler.reassembled == 1

    def test_out_of_order_fragments(self):
        frame = self._big_frame()
        fragments = fragment_ipv4(frame, 1208)
        reassembler = FragmentReassembler()
        order = [2, 0, 3, 1]
        results = [reassembler.push(Mbuf(fragments[i])) for i in order]
        assert results[-1] is not None
        assert all(r is None for r in results[:-1])

    def test_non_fragment_passthrough(self):
        mbuf = Mbuf(build_udp_packet("1.1.1.1", "2.2.2.2", 1, 2, b"x"))
        assert FragmentReassembler().push(mbuf) is mbuf

    def test_timeout_discards(self):
        fragments = fragment_ipv4(self._big_frame(), 1208)
        reassembler = FragmentReassembler(timeout=5.0)
        reassembler.push(Mbuf(fragments[0], timestamp=0.0))
        # A later unrelated fragment advances time past the timeout.
        other = fragment_ipv4(
            build_tcp_packet("10.0.0.9", "171.64.2.2", 99, 443,
                             payload=b"y" * 3000), 1208)
        reassembler.push(Mbuf(other[0], timestamp=10.0))
        assert reassembler.discarded == 1

    def test_table_cap_evicts_oldest(self):
        reassembler = FragmentReassembler(max_datagrams=2)
        for i in range(3):
            frame = build_tcp_packet(f"10.0.0.{i + 1}", "171.64.2.2",
                                     1000 + i, 443, payload=b"q" * 3000)
            reassembler.push(Mbuf(fragment_ipv4(frame, 1208)[0],
                                  timestamp=float(i)))
        assert len(reassembler) == 2
        assert reassembler.discarded == 1

    def test_oversize_datagram_discarded(self):
        reassembler = FragmentReassembler(max_datagram_bytes=2000)
        frame = self._big_frame(payload=b"w" * 5000)
        for fragment in fragment_ipv4(frame, 1208):
            reassembler.push(Mbuf(fragment))
        assert reassembler.reassembled == 0
        # Fragments arriving after the discard re-open (and re-discard)
        # the datagram; at least one discard must be recorded.
        assert reassembler.discarded >= 1

    def test_runtime_integration(self):
        """A TLS 1.2 server flight that is IP-fragmented: the bytes in
        non-first fragments (the certificate chain) are only visible
        with fragment reassembly enabled."""
        flow = tls_flow(FlowSpec("10.0.0.1", "171.64.2.2", 5555, 443),
                        "frag.example.com", cert_bytes=2500,
                        selected_version=None)
        packets = []
        for mbuf in flow:
            if len(mbuf) > 1300:
                packets.extend(Mbuf(f, timestamp=mbuf.timestamp)
                               for f in fragment_ipv4(mbuf.data, 1208))
            else:
                packets.append(mbuf)
        def run(reassemble):
            got = []
            runtime = Runtime(
                RuntimeConfig(cores=1,
                              reassemble_fragments=reassemble),
                filter_str="tls", datatype="tls_handshake",
                callback=got.append)
            runtime.run(iter(list(packets)))
            return got
        with_reassembly = run(True)
        without = run(False)
        assert [h.sni() for h in with_reassembly] == ["frag.example.com"]
        assert with_reassembly[0].data.cert_count() == 1
        # Without reassembly the handshake still resolves (the client's
        # next flight signals completion) but the fragmented
        # certificate bytes were never seen.
        assert all(h.data.cert_count() == 0 for h in without)


class TestHttpChunked:
    def test_chunked_response_skipped(self):
        parser = HttpParser()
        parser.parse(seg(b"GET /a HTTP/1.1\r\nHost: h\r\n\r\n"))
        response = (b"HTTP/1.1 200 OK\r\n"
                    b"Transfer-Encoding: chunked\r\n\r\n"
                    b"5\r\nhello\r\n"
                    b"6\r\n world\r\n"
                    b"0\r\n\r\n"
                    b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n")
        parser.parse(seg(b"GET /b HTTP/1.1\r\nHost: h\r\n\r\n"))
        parser.parse(seg(response, from_orig=False))
        sessions = parser.drain_sessions()
        assert [s.data.status_code() for s in sessions] == [200, 404]

    def test_chunked_split_across_segments(self):
        parser = HttpParser()
        parser.parse(seg(b"GET /a HTTP/1.1\r\n\r\n"))
        parser.parse(seg(b"HTTP/1.1 200 OK\r\n"
                         b"Transfer-Encoding: chunked\r\n\r\n"
                         b"a\r\n0123", from_orig=False))
        parser.parse(seg(b"456789\r\n0\r\n\r\n"
                         b"HTTP/1.1 204 No Content\r\n\r\n",
                         from_orig=False))
        parser.parse(seg(b"GET /b HTTP/1.1\r\n\r\n"))
        statuses = [s.data.status_code()
                    for s in parser.drain_sessions()]
        assert 204 in statuses

    def test_chunk_extension_tolerated(self):
        parser = HttpParser()
        parser.parse(seg(b"GET / HTTP/1.1\r\n\r\n"))
        result = parser.parse(seg(
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
            b"4;ext=1\r\nbody\r\n0\r\n\r\n", from_orig=False))
        assert result is ParseResult.DONE

    def test_bad_chunk_size_is_error(self):
        parser = HttpParser()
        parser.parse(seg(b"GET / HTTP/1.1\r\n\r\n"))
        result = parser.parse(seg(
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
            b"zz\r\n....", from_orig=False))
        assert result is ParseResult.ERROR


class TestTlsCertificates:
    def test_chain_lengths_extracted(self):
        from repro.protocols.tls.build import (
            build_certificate, build_client_hello, build_server_hello,
            build_server_hello_done,
        )
        parser = TlsParser()
        parser.parse(seg(build_client_hello("c.example", bytes(32))))
        flight = (build_server_hello(bytes(range(32, 64)),
                                     cipher_suite=0xC02F)
                  + build_certificate(b"\x30\x82" + bytes(1500))
                  + build_server_hello_done())
        assert parser.parse(seg(flight, from_orig=False)) is \
            ParseResult.DONE
        data = parser.drain_sessions()[0].data
        assert data.cert_count() == 1
        assert data.certificate_lengths == [1502]

    def test_cert_count_filterable(self):
        got = []
        runtime = Runtime(
            RuntimeConfig(cores=1),
            filter_str="tls.cert_count > 0",
            datatype="tls_handshake",
            callback=got.append,
        )
        runtime.run(iter(tls_flow(
            FlowSpec("10.0.0.1", "1.1.1.1", 1000, 443), "has.certs",
            selected_version=None)))
        assert len(got) == 1


class TestServiceIdentificationAndProfiler:
    @pytest.fixture(scope="class")
    def profile(self):
        profiler = TrafficProfiler()
        runtime = Runtime(
            RuntimeConfig(cores=4),
            filter_str="",
            datatype="connection",
            callback=profiler,
            identify_services=True,
        )
        traffic = CampusTrafficGenerator(seed=21).packets(duration=0.4,
                                                          gbps=0.2)
        runtime.run(iter(traffic))
        return profiler

    def test_services_labeled(self, profile):
        assert profile.by_service["tls"] > 0
        assert profile.by_service["dns"] > 0
        # Raw scanners and opaque flows stay unidentified.
        assert profile.by_service["unidentified"] > 0

    def test_volume_accounting(self, profile):
        assert profile.bytes > 0
        assert profile.connections == sum(profile.by_transport.values())
        assert sum(profile.service_bytes.values()) == profile.bytes

    def test_top_lists_and_summary(self, profile):
        ports = dict(profile.top_ports(10))
        assert 443 in ports
        summary = profile.summary()
        assert "top services by bytes" in summary
        assert "tls" in summary

    def test_talkers_hashed(self, profile):
        for talker, _ in profile.top_talkers(5):
            assert "." not in talker  # no raw addresses
            assert len(talker) == 12

    def test_explicit_subscription_flag(self):
        """Without the flag, a match-all connection subscription never
        probes — service stays None."""
        services = set()
        runtime = Runtime(
            RuntimeConfig(cores=1), filter_str="", datatype="connection",
            callback=lambda r: services.add(r.service),
        )
        packets = (
            tls_flow(FlowSpec("10.0.0.1", "1.1.1.1", 1000, 443), "a.b")
            + dns_flow(FlowSpec("10.0.0.2", "8.8.8.8", 2000, 53),
                       start_ts=1.0)
        )
        runtime.run(iter(sorted(packets, key=lambda m: m.timestamp)))
        assert services == {None}
