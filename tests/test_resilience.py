"""Resilience subsystem: deterministic fault injection, worker
supervision, and graceful degradation (repro.resilience).

The acceptance contract under test:

- **Determinism** — the same ``(seed, FaultPlan)`` produces
  byte-identical ``RuntimeReport.faults`` and aggregate stats across
  repeated runs and across backends (where the plan's coordinates
  permit the comparison; see faults.py's coordinate notes).
- **Crash recovery** — a plan that kills one worker completes; cores
  the fault never touched are *bit-identical* to a fault-free run; the
  report records the restart and the replayed batches.
- **Callback isolation** — under ``callback_error_policy="isolate"``
  the run completes, non-faulty counters match the baseline, and the
  quarantine fires exactly when the error budget is spent.
- **Zero overhead when disabled** — a plain run reports no faults
  section at all.
"""

import json

import pytest

from repro import FaultPlan, FaultSpec, Runtime, RuntimeConfig
from repro.core.parallel import ParallelExecutionError
from repro.errors import (
    CallbackError,
    FaultInjectionError,
    ResourceExhaustedError,
)
from repro.resilience import RedoLog, WorkerSupervisor, restart_backoff
from repro.traffic import CampusTrafficGenerator


@pytest.fixture(scope="module")
def traffic():
    return list(CampusTrafficGenerator(seed=21).packets(
        duration=0.4, gbps=0.1))


@pytest.fixture(scope="module")
def long_traffic():
    """Slower, longer trace: crosses several memory-sample points."""
    return list(CampusTrafficGenerator(seed=21).packets(
        duration=3.0, gbps=0.05))


def _run(traffic, plan=None, parallel=False, cores=4, filter_str="tcp",
         datatype="connection", **config_kwargs):
    config = RuntimeConfig(cores=cores, parallel=parallel,
                           fault_plan=plan, **config_kwargs)
    runtime = Runtime(config, filter_str=filter_str, datatype=datatype,
                      callback=None)
    return runtime.run(iter(traffic))


# ---------------------------------------------------------------------------
# plan model
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_round_trip(self):
        plan = FaultPlan.from_dict({
            "seed": 9,
            "faults": [
                {"kind": "corrupt_packet", "at_packet": 5, "count": 2},
                {"kind": "callback_error", "at_ordinal": 3, "core": 1},
                {"kind": "worker_crash", "at_batch": 2},
                {"kind": "memory_spike", "at_time": 1.5, "bytes": 4096,
                 "duration": 0.5},
            ],
        })
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        assert FaultPlan.from_json(json.dumps(plan.to_dict())) == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultInjectionError, match="unknown fault kind"):
            FaultPlan.from_dict(
                {"faults": [{"kind": "set_on_fire", "at_packet": 0}]})

    def test_unknown_field_rejected(self):
        with pytest.raises(FaultInjectionError, match="unknown fault field"):
            FaultPlan.from_dict(
                {"faults": [{"kind": "worker_crash", "at_batch": 0,
                             "at_pakcet": 1}]})

    def test_missing_coordinate_rejected(self):
        with pytest.raises(FaultInjectionError, match="at_packet"):
            FaultPlan(faults=(FaultSpec(kind="corrupt_packet"),))
        with pytest.raises(FaultInjectionError, match="bytes"):
            FaultPlan(faults=(FaultSpec(kind="memory_spike", at_time=1.0),))

    def test_bad_json_rejected(self):
        with pytest.raises(FaultInjectionError, match="not valid JSON"):
            FaultPlan.from_json("{nope")

    def test_worker_fault_lookup_and_suppression(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="worker_crash", at_batch=2, core=1),
            FaultSpec(kind="worker_hang", at_batch=2, core=1),
        ))
        index, spec = plan.worker_fault_at(1, 2)
        assert (index, spec.kind) == (0, "worker_crash")
        # After the crash fired once it is suppressed; the hang at the
        # same coordinate is next.
        index, spec = plan.worker_fault_at(1, 2, suppressed=(0,))
        assert (index, spec.kind) == (1, "worker_hang")
        assert plan.worker_fault_at(0, 2) is None
        assert plan.worker_fault_at(1, 3) is None


# ---------------------------------------------------------------------------
# packet faults: parent-side, pre-RSS
# ---------------------------------------------------------------------------
class TestPacketFaults:
    PLAN = {"seed": 7, "faults": [
        {"kind": "corrupt_packet", "at_packet": 10, "count": 4},
        {"kind": "truncate_packet", "at_packet": 100, "keep_bytes": 20},
        {"kind": "truncate_packet", "at_packet": 101},
    ]}

    def test_injection_counts(self, traffic):
        report = _run(traffic, FaultPlan.from_dict(self.PLAN))
        assert report.faults.injected == {"corrupt_packet": 4,
                                          "truncate_packet": 2}

    def test_two_runs_byte_identical(self, traffic):
        plan = FaultPlan.from_dict(self.PLAN)
        one = _run(traffic, plan)
        two = _run(traffic, plan)
        assert one.faults.to_dict() == two.faults.to_dict()
        assert one.stats.to_dict() == two.stats.to_dict()

    def test_backends_byte_identical(self, traffic):
        plan = FaultPlan.from_dict(self.PLAN)
        for cores in (1, 2, 4):
            seq = _run(traffic, plan, cores=cores)
            par = _run(traffic, plan, parallel=True, cores=cores)
            assert seq.stats.to_dict() == par.stats.to_dict(), \
                f"backends diverged at {cores} cores"
            assert seq.faults.to_dict() == par.faults.to_dict()

    def test_seed_changes_corruption(self, traffic):
        """Different seeds corrupt differently — the seed is live."""
        base = dict(self.PLAN)
        one = _run(traffic, FaultPlan.from_dict({**base, "seed": 1}))
        two = _run(traffic, FaultPlan.from_dict({**base, "seed": 2}))
        # Same number of injections either way...
        assert one.faults.injected == two.faults.injected
        # ...but not necessarily the same downstream effect. (Equality
        # here would be astronomically unlikely to matter; we only
        # assert the runs completed with the same packet totals.)
        assert one.stats.ingress_packets == two.stats.ingress_packets


# ---------------------------------------------------------------------------
# callback faults + isolation policy
# ---------------------------------------------------------------------------
class TestCallbackIsolation:
    def test_raise_policy_propagates_callback_error(self, traffic):
        plan = FaultPlan(faults=(
            FaultSpec(kind="callback_error", at_ordinal=0),))
        with pytest.raises(CallbackError):
            _run(traffic, plan)

    def test_isolate_completes_and_counts(self, traffic):
        plan = FaultPlan(faults=(
            FaultSpec(kind="callback_error", at_ordinal=0, core=0),))
        report = _run(traffic, plan, callback_error_policy="isolate")
        assert report.faults.callback_errors == 1
        assert report.faults.quarantined_cores == []
        assert report.faults.injected.get("callback_error") == 1

    def test_quarantine_fires_exactly_at_budget(self, traffic):
        """Errors on every delivery: the quarantine engages after
        exactly ``budget`` errors and suppresses the rest — while every
        non-faulty counter stays equal to the fault-free baseline."""
        budget = 3
        plan = FaultPlan(faults=(
            FaultSpec(kind="callback_error", at_ordinal=0, every=1,
                      core=0),))
        base = _run(traffic, None)
        report = _run(traffic, plan, callback_error_policy="isolate",
                      callback_error_budget=budget)
        faults = report.faults
        assert faults.callback_errors == budget
        assert faults.quarantined_cores == [0]
        assert faults.callbacks_suppressed > 0
        # Delivery accounting is baseline-equal: the quarantine only
        # withholds the user function.
        basedict = base.stats.to_dict()
        gotdict = report.stats.to_dict()
        for key in ("ingress_packets", "processed_packets", "callbacks",
                    "conns_created", "conns_delivered", "sessions_parsed",
                    "stage_cycles", "peak_memory_bytes"):
            assert gotdict[key] == basedict[key], key
        assert report.stats.memory_samples == base.stats.memory_samples

    def test_isolation_identical_across_backends(self, traffic):
        plan = FaultPlan(faults=(
            FaultSpec(kind="callback_error", at_ordinal=2, core=1,
                      every=5),))
        seq = _run(traffic, plan, callback_error_policy="isolate",
                   callback_error_budget=2)
        par = _run(traffic, plan, parallel=True,
                   callback_error_policy="isolate",
                   callback_error_budget=2)
        assert seq.stats.to_dict() == par.stats.to_dict()
        assert seq.faults.to_dict() == par.faults.to_dict()

    def test_user_callback_exception_isolated_too(self, traffic):
        """The policy isolates *real* callback bugs, not only injected
        ones."""
        calls = []

        def flaky(obj):
            calls.append(obj)
            if len(calls) <= 2:
                raise ValueError("user bug")

        config = RuntimeConfig(cores=2, callback_error_policy="isolate")
        runtime = Runtime(config, filter_str="tcp", datatype="connection",
                          callback=flaky)
        report = runtime.run(iter(traffic))
        assert report.faults.callback_errors == 2
        assert calls  # the callback did run


# ---------------------------------------------------------------------------
# parser faults
# ---------------------------------------------------------------------------
class TestParserFaults:
    def test_parser_fault_absorbed(self, traffic):
        plan = FaultPlan(faults=(
            FaultSpec(kind="parser_error", at_ordinal=0, core=0),))
        base = _run(traffic, None, filter_str="tls",
                    datatype="tls_handshake")
        report = _run(traffic, plan, filter_str="tls",
                      datatype="tls_handshake")
        assert base.stats.sessions_parsed > 0  # comparison not vacuous
        assert report.faults.parser_exceptions == 1
        assert report.faults.injected.get("parser_error") == 1

    def test_parser_faults_identical_across_backends(self, traffic):
        plan = FaultPlan(faults=(
            FaultSpec(kind="parser_error", at_ordinal=1, every=10),))
        seq = _run(traffic, plan, filter_str="tls",
                   datatype="tls_handshake")
        par = _run(traffic, plan, parallel=True, filter_str="tls",
                   datatype="tls_handshake")
        assert seq.faults.parser_exceptions > 1
        assert seq.stats.to_dict() == par.stats.to_dict()
        assert seq.faults.to_dict() == par.faults.to_dict()


# ---------------------------------------------------------------------------
# memory pressure: record / evict / shed
# ---------------------------------------------------------------------------
class TestMemoryPolicies:
    def test_spike_triggers_oom_under_record(self, long_traffic):
        plan = FaultPlan(faults=(
            FaultSpec(kind="memory_spike", at_time=1.0,
                      bytes=10_000_000),))
        report = _run(long_traffic, plan, cores=2,
                      memory_limit_bytes=200_000)
        assert report.out_of_memory
        assert report.oom_at >= 1.0
        assert report.faults.injected.get("memory_spike") == 1

    def test_evict_keeps_run_alive(self, long_traffic):
        report = _run(long_traffic, cores=2, memory_policy="evict",
                      memory_limit_bytes=20_000)
        assert not report.out_of_memory
        assert report.faults.conns_evicted > 0
        assert report.faults.conns_shed == 0
        # The policy actually enforces the per-core share at sample
        # cadence.
        share = 20_000 // 2
        for _, _, memory in report.stats.memory_samples:
            assert memory <= 2 * share

    def test_shed_refuses_new_connections(self, long_traffic):
        report = _run(long_traffic, cores=2, memory_policy="shed",
                      memory_limit_bytes=20_000)
        assert not report.out_of_memory
        assert report.faults.conns_shed > 0
        assert report.faults.conns_evicted == 0

    def test_policies_identical_across_backends(self, long_traffic):
        for policy in ("evict", "shed"):
            seq = _run(long_traffic, cores=2, memory_policy=policy,
                       memory_limit_bytes=20_000)
            par = _run(long_traffic, cores=2, parallel=True,
                       memory_policy=policy, memory_limit_bytes=20_000)
            assert seq.stats.to_dict() == par.stats.to_dict(), policy
            assert seq.faults.to_dict() == par.faults.to_dict(), policy

    def test_evict_idle_unreachable_target_raises(self):
        from repro.conntrack.table import ConnTable
        table = ConnTable()
        with pytest.raises(ResourceExhaustedError):
            table.evict_idle(-1)
        # Non-destructive: a reachable target still works afterwards.
        assert table.evict_idle(0) == []


# ---------------------------------------------------------------------------
# supervisor bookkeeping (unit)
# ---------------------------------------------------------------------------
class TestSupervisorUnits:
    def test_backoff_schedule(self):
        assert [restart_backoff(i) for i in range(6)] == \
            [0.05, 0.1, 0.2, 0.4, 0.8, 1.0]

    def test_redo_log_bounds_and_ack(self):
        log = RedoLog(capacity=2)
        for seq in range(4):
            log.record(seq, [seq])
        assert [s for s, _ in log.pending()] == [2, 3]
        assert log.unreplayable == 2  # seqs 0 and 1 were evicted
        log.ack(1)  # the worker did process them before crashing
        assert log.unreplayable == 0
        log.ack(2)
        assert [s for s, _ in log.pending()] == [3]

    def test_supervisor_budget_exhaustion(self):
        sup = WorkerSupervisor(cores=2, plan=None, max_restarts=1,
                               redo_capacity=8, heartbeat_timeout=5.0)
        seq, fault = sup.on_dispatch(0, ["batch"])
        assert (seq, fault) == (0, None)
        backoff, replay, suppressed = sup.on_failure(0, None)
        assert backoff == 0.05
        assert [s for s, _ in replay] == [0]
        assert not sup.is_lost(0)
        assert sup.on_failure(0, None) is None  # budget spent
        assert sup.is_lost(0)
        assert sup.degraded
        assert sup.lost_cores == [0]
        summary = sup.summary()
        assert summary["restarts"] == 1
        assert summary["degraded"] is True

    def test_planned_fault_surfaces_on_dispatch(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="worker_crash", at_batch=1, core=0),))
        sup = WorkerSupervisor(cores=1, plan=plan, max_restarts=2,
                               redo_capacity=8, heartbeat_timeout=5.0)
        assert sup.on_dispatch(0, ["b0"])[1] is None
        seq, fault = sup.on_dispatch(0, ["b1"])
        assert seq == 1 and fault is not None
        index, spec = fault
        assert spec.kind == "worker_crash"
        # Recovery suppresses the fired index in the restarted worker.
        _, _, suppressed = sup.on_failure(0, index)
        assert index in suppressed


# ---------------------------------------------------------------------------
# crash recovery end-to-end (parallel backend)
# ---------------------------------------------------------------------------
class TestCrashRecovery:
    CRASH = FaultPlan(seed=1, faults=(
        FaultSpec(kind="worker_crash", at_batch=1, core=1),))

    def test_crash_restart_completes(self, traffic):
        report = _run(traffic, self.CRASH, parallel=True)
        faults = report.faults
        assert faults.worker_restarts == 1
        assert faults.replayed_batches == 1
        assert faults.unreplayable_batches == 0
        assert faults.restart_backoffs == [0.05]
        assert not faults.degraded
        assert report.stats.ingress_packets > 0

    def test_crash_recovery_deterministic(self, traffic):
        one = _run(traffic, self.CRASH, parallel=True)
        two = _run(traffic, self.CRASH, parallel=True)
        assert one.faults.to_dict() == two.faults.to_dict()
        assert one.stats.to_dict() == two.stats.to_dict()

    def test_unaffected_cores_bit_identical(self, traffic):
        """Cores the fault never touched match a fault-free run
        bit-for-bit — the blast radius really is one core."""
        base = _run(traffic, None, parallel=True)
        hurt = _run(traffic, self.CRASH, parallel=True)
        for core in (0, 2, 3):
            assert base.core_stats[core].to_dict() == \
                hurt.core_stats[core].to_dict(), f"core {core} diverged"

    def test_hang_detected_and_restarted(self, traffic):
        plan = FaultPlan(faults=(
            FaultSpec(kind="worker_hang", at_batch=1, core=0),))
        report = _run(traffic, plan, parallel=True,
                      worker_heartbeat_timeout=0.5)
        assert report.faults.worker_restarts == 1
        assert not report.faults.degraded

    def test_restart_budget_exhaustion_degrades(self, traffic):
        """Two planned crashes against a budget of one: the core is
        lost and the run completes degraded with partial stats."""
        plan = FaultPlan(faults=(
            FaultSpec(kind="worker_crash", at_batch=0, core=1),
            FaultSpec(kind="worker_crash", at_batch=0, core=1),
        ))
        base = _run(traffic, None, parallel=True)
        report = _run(traffic, plan, parallel=True, max_worker_restarts=1)
        faults = report.faults
        assert faults.degraded and report.degraded
        assert faults.lost_cores == [1]
        assert faults.worker_restarts == 1
        # Partial results: the three surviving cores still reported.
        assert sorted(report.core_stats) == [0, 2, 3]
        assert 0 < report.stats.processed_packets < \
            base.stats.processed_packets

    def test_sequential_backend_skips_worker_faults(self, traffic):
        report = _run(traffic, self.CRASH, parallel=False)
        assert report.faults.worker_restarts == 0
        assert report.faults.skipped_worker_faults == 1


# ---------------------------------------------------------------------------
# pool lifecycle (satellite: no leaked workers on error)
# ---------------------------------------------------------------------------
class TestPoolLifecycle:
    def test_error_terminates_pool_and_keeps_partial_stats(self, traffic):
        import multiprocessing as mp

        def exploding(obj):
            raise RuntimeError("callback boom")

        config = RuntimeConfig(cores=2, parallel=True)
        runtime = Runtime(config, filter_str="", datatype="packet",
                          callback=exploding)
        with pytest.raises(ParallelExecutionError) as excinfo:
            runtime.run(iter(traffic))
        assert excinfo.value.core_id is not None
        # The pool was torn down before the exception propagated: no
        # repro worker processes survive.
        leaked = [p for p in mp.active_children()
                  if p.name.startswith("repro-core-")]
        assert leaked == []


# ---------------------------------------------------------------------------
# zero overhead when disabled
# ---------------------------------------------------------------------------
class TestDisabled:
    def test_plain_run_has_no_faults_section(self, traffic):
        report = _run(traffic, None)
        assert report.faults is None
        d = report.stats.to_dict()
        assert d["callback_errors"] == 0
        assert d["parser_exceptions"] == 0
        assert d["fault_counters"] == {}

    def test_report_json_round_trips(self, traffic):
        report = _run(traffic, FaultPlan.from_dict(TestPacketFaults.PLAN))
        payload = report.faults.to_dict()
        assert json.loads(json.dumps(payload)) == payload
