"""Tests for the byte-stream subscribable (Section 3.3 / 5.2)."""

import pytest

from repro import Runtime, RuntimeConfig
from repro.core.datatypes import StreamChunk
from repro.traffic import FlowSpec, TcpFlow, http_flow, tls_flow


def run_stream(packets, filter_str, **config_kwargs):
    chunks = []
    runtime = Runtime(
        RuntimeConfig(cores=1, **config_kwargs),
        filter_str=filter_str,
        datatype="byte_stream",
        callback=chunks.append,
    )
    runtime.run(iter(sorted(packets, key=lambda m: m.timestamp)))
    return chunks


class TestByteStream:
    def test_plain_tcp_stream(self):
        """A packet-terminal filter: every payload chunk delivered."""
        flow = TcpFlow(FlowSpec("10.0.0.1", "171.64.1.1", 1000, 7000))
        flow.handshake()
        flow.send(True, b"hello ")
        flow.send(False, b"world")
        flow.fin()
        chunks = run_stream(flow.build(), "tcp.port = 7000")
        client = b"".join(c.payload for c in chunks if c.from_orig)
        server = b"".join(c.payload for c in chunks if not c.from_orig)
        assert client == b"hello "
        assert server == b"world"
        assert all(isinstance(c, StreamChunk) for c in chunks)

    def test_in_order_despite_reordering(self):
        import random
        flow = TcpFlow(FlowSpec("10.0.0.1", "171.64.1.1", 1001, 7000))
        flow.handshake()
        flow.send(True, bytes(range(256)) * 20, ack_every=0)
        flow.shuffle_segments(random.Random(5))
        chunks = run_stream(flow.build(), "tcp.port = 7000")
        client = b"".join(c.payload for c in chunks if c.from_orig)
        assert client == bytes(range(256)) * 20

    def test_session_filtered_stream(self):
        """Section 5.2's example: TLS byte-streams for matching SNI —
        buffered until the session filter resolves, then all delivered."""
        match = tls_flow(FlowSpec("10.0.0.1", "171.64.1.1", 1002, 443),
                         "stream.matching.com", appdata_bytes=40_000)
        miss = tls_flow(FlowSpec("10.0.0.2", "171.64.1.2", 1003, 443),
                        "other.example.org", appdata_bytes=40_000,
                        start_ts=2.0)
        chunks = run_stream(match + miss, "tls.sni ~ '.*\\.com$'")
        assert chunks
        tuples = {str(c.five_tuple) for c in chunks}
        assert len(tuples) == 1
        assert "10.0.0.1" in next(iter(tuples))
        # Early chunks (the ClientHello bytes, pre-match) included.
        total = sum(len(c.payload) for c in chunks)
        wire_payload = sum(len(m) - 54 for m in match if len(m) > 60)
        assert total >= wire_payload * 0.9

    def test_stream_continues_after_match(self):
        """Post-match payload keeps flowing (reassembler stays alive)."""
        flow = http_flow(FlowSpec("10.0.0.1", "171.64.1.1", 1004, 80),
                         host="h.test", response_bytes=30_000)
        chunks = run_stream(flow, "http")
        server_bytes = sum(len(c.payload) for c in chunks
                           if not c.from_orig)
        assert server_bytes > 30_000  # headers + body all delivered

    def test_non_matching_stream_never_delivered(self):
        flow = http_flow(FlowSpec("10.0.0.1", "171.64.1.1", 1005, 80),
                         host="h.test")
        assert run_stream(flow, "tls") == []

    def test_udp_datagram_stream(self):
        from repro.traffic import udp_flow
        packets = udp_flow(FlowSpec("10.0.0.1", "171.64.1.1", 1006, 9999),
                           payload_sizes=(100, 200))
        chunks = run_stream(packets, "udp.port = 9999")
        assert [len(c.payload) for c in chunks] == [100, 200]
