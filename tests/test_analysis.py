"""Tests for the Section 7 analysis applications."""

import ipaddress

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Runtime, RuntimeConfig
from repro.analysis import (
    ClientRandomCounter,
    IpCrypt,
    PrefixPreservingEncryptor,
    VideoSessionAggregator,
    anonymize_packet,
)
from repro.packet import Mbuf, build_tcp_packet, checksum16, parse_stack
from repro.traffic import FlowSpec, tls_flow

KEY = bytes(range(16))


class TestIpCrypt:
    def test_roundtrip(self):
        crypt = IpCrypt(KEY)
        encrypted = crypt.encrypt("1.2.3.4")
        assert crypt.decrypt(encrypted) == ipaddress.ip_address("1.2.3.4")

    def test_format_preserving(self):
        crypt = IpCrypt(KEY)
        assert isinstance(crypt.encrypt("10.0.0.1"),
                          ipaddress.IPv4Address)

    def test_not_identity(self):
        crypt = IpCrypt(KEY)
        changed = sum(
            1 for i in range(64)
            if crypt.encrypt(f"10.0.0.{i}") != ipaddress.ip_address(
                f"10.0.0.{i}")
        )
        assert changed >= 63

    def test_key_sensitivity(self):
        a = IpCrypt(KEY).encrypt("8.8.8.8")
        b = IpCrypt(bytes(range(1, 17))).encrypt("8.8.8.8")
        assert a != b

    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            IpCrypt(b"short")

    @settings(max_examples=200, deadline=None)
    @given(value=st.integers(0, 2 ** 32 - 1))
    def test_property_bijection(self, value):
        crypt = IpCrypt(KEY)
        addr = ipaddress.IPv4Address(value)
        assert crypt.decrypt(crypt.encrypt(addr)) == addr


class TestPrefixPreserving:
    def test_prefix_preserved(self):
        enc = PrefixPreservingEncryptor(KEY)
        a = int(enc.encrypt("192.168.1.10"))
        b = int(enc.encrypt("192.168.1.77"))
        c = int(enc.encrypt("192.168.2.10"))
        assert a >> 8 == b >> 8          # same /24 stays same /24
        assert a >> 8 != c >> 8          # different /24 diverges
        assert (a >> 16) == (c >> 16)    # but the shared /16 is kept

    def test_deterministic(self):
        enc = PrefixPreservingEncryptor(KEY)
        assert enc.encrypt("1.1.1.1") == enc.encrypt("1.1.1.1")

    def test_key_required(self):
        with pytest.raises(ValueError):
            PrefixPreservingEncryptor(b"tiny")

    @settings(max_examples=60, deadline=None)
    @given(
        value=st.integers(0, 2 ** 32 - 1),
        other=st.integers(0, 2 ** 32 - 1),
    )
    def test_property_longest_common_prefix_preserved(self, value, other):
        enc = PrefixPreservingEncryptor(KEY)
        a_in, b_in = value, other
        a_out = int(enc.encrypt(ipaddress.IPv4Address(a_in)))
        b_out = int(enc.encrypt(ipaddress.IPv4Address(b_in)))
        lcp_in = 32 - (a_in ^ b_in).bit_length()
        lcp_out = 32 - (a_out ^ b_out).bit_length()
        assert lcp_in == lcp_out


class TestAnonymizePacket:
    def test_addresses_replaced_checksum_valid(self):
        enc = PrefixPreservingEncryptor(KEY)
        original = Mbuf(build_tcp_packet("10.1.2.3", "171.64.9.9",
                                         1234, 80, b"GET / HTTP/1.1\r\n"))
        anon = anonymize_packet(original, enc)
        stack = parse_stack(anon)
        assert str(stack.ip.src_addr()) != "10.1.2.3"
        header = anon.data[14:14 + stack.ip.header_len()]
        assert checksum16(header) == 0
        # Payload untouched.
        assert stack.l4_payload() == b"GET / HTTP/1.1\r\n"

    def test_same_subnet_same_anonymized_subnet(self):
        enc = PrefixPreservingEncryptor(KEY)
        a = anonymize_packet(
            Mbuf(build_tcp_packet("10.1.2.3", "8.8.8.8", 1, 80)), enc)
        b = anonymize_packet(
            Mbuf(build_tcp_packet("10.1.2.99", "8.8.8.8", 2, 80)), enc)
        sa = parse_stack(a).ip.src_addr()
        sb = parse_stack(b).ip.src_addr()
        assert sa.packed[:3] == sb.packed[:3]


class TestClientRandomCounter:
    def _run(self, flows):
        counter = ClientRandomCounter()
        rt = Runtime(RuntimeConfig(cores=2), filter_str="tls",
                     datatype="tls_handshake", callback=counter)
        packets = sorted((m for f in flows for m in f),
                         key=lambda m: m.timestamp)
        rt.run(iter(packets))
        return counter

    def test_counts_repeats(self):
        stuck = bytes.fromhex("738b712a" + "00" * 24 + "dee0dbe1")
        flows = [
            tls_flow(FlowSpec(f"10.0.0.{i + 1}", "1.1.1.1", 1000 + i, 443),
                     "a.com", client_random=stuck, start_ts=i * 0.01)
            for i in range(5)
        ]
        flows.append(tls_flow(
            FlowSpec("10.0.9.9", "1.1.1.1", 2000, 443), "b.com",
            client_random=bytes(range(32)), start_ts=1.0))
        counter = self._run(flows)
        assert counter.handshakes == 6
        assert counter.distinct == 2
        assert counter.top(1)[0] == (stuck, 5)
        assert counter.repeated == 4
        assert counter.anomalies() == [(stuck, 5)]

    def test_all_zero_detected(self):
        flows = [tls_flow(FlowSpec("10.0.0.1", "1.1.1.1", 1000, 443),
                          "z.com", client_random=bytes(32))]
        counter = self._run(flows)
        assert counter.all_zero_count == 1
        assert "1 distinct" in counter.summary()


class TestVideoAggregator:
    def _record(self, client, first, last, up, down, ooo=0):
        from repro.core.datatypes import ConnectionRecord
        from repro.conntrack.five_tuple import FiveTuple
        tup = FiveTuple(ipaddress.ip_address(client).packed,
                        ipaddress.ip_address("45.57.0.1").packed,
                        40000, 443, 6)
        return ConnectionRecord(
            five_tuple=tup, first_ts=first, last_ts=last,
            bytes_orig=up, bytes_resp=down, ooo_resp=ooo,
        )

    def test_groups_parallel_flows(self):
        agg = VideoSessionAggregator("netflix")
        agg(self._record("10.0.0.1", 0.0, 10.0, 1000, 500000))
        agg(self._record("10.0.0.1", 2.0, 12.0, 2000, 800000, ooo=4))
        agg(self._record("10.0.0.2", 1.0, 5.0, 100, 90000))
        sessions = agg.finish()
        assert len(sessions) == 2
        big = max(sessions, key=lambda s: s.flows)
        assert big.flows == 2
        assert big.bytes_down == 1_300_000
        assert big.avg_ooo_down == 2.0
        assert big.download_throughput_bps == pytest.approx(
            1_300_000 * 8 / 12.0)

    def test_idle_gap_splits_sessions(self):
        agg = VideoSessionAggregator("netflix", idle_gap=30.0)
        agg(self._record("10.0.0.1", 0.0, 10.0, 10, 100))
        agg(self._record("10.0.0.1", 100.0, 110.0, 10, 100))
        sessions = agg.finish()
        assert len(sessions) == 2

    def test_cdf_monotonic(self):
        agg = VideoSessionAggregator("yt")
        for i in range(5):
            agg(self._record(f"10.0.0.{i + 1}", 0.0, 10.0, 10,
                             (i + 1) * 1_000_000))
        agg.finish()
        cdf = agg.byte_cdf("down")
        values = [v for v, _ in cdf]
        fracs = [f for _, f in cdf]
        assert values == sorted(values)
        assert fracs[-1] == 1.0
