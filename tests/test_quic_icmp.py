"""Tests for the QUIC and ICMP protocol modules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Runtime, RuntimeConfig
from repro.filter import compile_filter
from repro.packet import Icmp, Mbuf, build_icmp_echo, parse_stack
from repro.protocols import ProbeResult, ParseResult, QuicParser
from repro.protocols.quic.build import (
    QUIC_V1,
    QUIC_V2,
    build_quic_initial,
    build_quic_short,
    build_quic_version_negotiation,
    decode_varint,
    encode_varint,
)
from repro.protocols.quic.parser import parse_long_header
from repro.stream.pdu import StreamSegment
from repro.traffic import FlowSpec, ping_flow, quic_flow


def seg(payload, from_orig=True, ts=0.0):
    return StreamSegment(payload, from_orig, ts)


class TestVarint:
    @pytest.mark.parametrize("value", [0, 63, 64, 16383, 16384,
                                       (1 << 30) - 1, 1 << 30,
                                       (1 << 62) - 1])
    def test_round_trip(self, value):
        encoded = encode_varint(value)
        decoded, end = decode_varint(encoded)
        assert decoded == value
        assert end == len(encoded)

    def test_lengths(self):
        assert len(encode_varint(63)) == 1
        assert len(encode_varint(64)) == 2
        assert len(encode_varint(16384)) == 4
        assert len(encode_varint(1 << 30)) == 8

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            encode_varint(1 << 62)
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_truncated(self):
        with pytest.raises(ValueError):
            decode_varint(b"")
        with pytest.raises(ValueError):
            decode_varint(b"\x80")  # claims 4 bytes, has 1

    @settings(max_examples=100, deadline=None)
    @given(value=st.integers(0, (1 << 62) - 1))
    def test_property_round_trip(self, value):
        decoded, _ = decode_varint(encode_varint(value))
        assert decoded == value


class TestQuicHeader:
    def test_initial_parses(self):
        datagram = build_quic_initial(b"\xaa" * 8, b"\xbb" * 5,
                                      token=b"tok")
        header = parse_long_header(datagram)
        assert header.version == QUIC_V1
        assert header.dcid == b"\xaa" * 8
        assert header.scid == b"\xbb" * 5
        assert header.token == b"tok"

    def test_short_header_not_long(self):
        assert parse_long_header(build_quic_short(b"\xaa" * 8)) is None

    def test_version_negotiation(self):
        datagram = build_quic_version_negotiation(b"\x01" * 4, b"\x02" * 4)
        header = parse_long_header(datagram)
        assert header.version == 0

    def test_oversized_cid_rejected(self):
        with pytest.raises(ValueError):
            build_quic_initial(b"\x00" * 21, b"")


class TestQuicParser:
    def test_probe(self):
        parser = QuicParser()
        assert parser.probe(seg(build_quic_initial(b"\x01" * 8, b""))) \
            is ProbeResult.MATCH
        assert parser.probe(seg(b"GET / HTTP/1.1")) is ProbeResult.NO_MATCH
        assert parser.probe(seg(b"")) is ProbeResult.UNSURE

    def test_probe_unknown_version(self):
        datagram = build_quic_initial(b"\x01" * 8, b"", version=0x12345678)
        assert QuicParser().probe(seg(datagram)) is ProbeResult.NO_MATCH

    def test_handshake(self):
        parser = QuicParser()
        client = build_quic_initial(b"\xaa" * 8, b"\xcc" * 8,
                                    version=QUIC_V2, token=b"t" * 16)
        server = build_quic_initial(b"\xcc" * 8, b"\xdd" * 8,
                                    version=QUIC_V2)
        assert parser.parse(seg(client, from_orig=True)) is \
            ParseResult.CONTINUE
        assert parser.parse(seg(server, from_orig=False)) is \
            ParseResult.DONE
        data = parser.drain_sessions()[0].data
        assert data.version() == "QUICv2"
        assert data.dcid() == "aa" * 8
        assert data.server_scid == b"\xdd" * 8
        assert data.client_token_len == 16

    def test_short_header_ignored_mid_parse(self):
        parser = QuicParser()
        parser.parse(seg(build_quic_initial(b"\x0a" * 8, b"\x0b" * 8)))
        assert parser.parse(seg(build_quic_short(b"\x0a" * 8))) is \
            ParseResult.CONTINUE

    def test_end_to_end_subscription(self):
        got = []
        runtime = Runtime(
            RuntimeConfig(cores=2),
            filter_str="quic.version = 'QUICv1'",
            datatype="quic_handshake",
            callback=got.append,
        )
        packets = quic_flow(FlowSpec("10.0.0.1", "171.64.2.2", 44444, 443),
                            dcid=b"\x77" * 8, scid=b"\x88" * 8)
        packets += quic_flow(FlowSpec("10.0.0.2", "171.64.2.3", 44445, 443),
                             version=QUIC_V2, start_ts=1.0)
        runtime.run(iter(sorted(packets, key=lambda m: m.timestamp)))
        assert len(got) == 1
        assert got[0].version() == "QUICv1"
        assert got[0].dcid() == "77" * 8

    def test_campus_mix_carries_quic(self):
        from repro.traffic import CampusTrafficGenerator
        got = []
        runtime = Runtime(RuntimeConfig(cores=4), filter_str="quic",
                          datatype="quic_handshake", callback=got.append)
        traffic = CampusTrafficGenerator(seed=19).packets(duration=0.4,
                                                          gbps=0.3)
        runtime.run(iter(traffic))
        assert got, "campus mix should contain QUIC connections"
        assert all(h.version() == "QUICv1" for h in got)


class TestIcmp:
    def test_echo_builder_and_parser(self):
        frame = build_icmp_echo("10.0.0.1", "8.8.8.8", identifier=99,
                                sequence=3)
        stack = parse_stack(Mbuf(frame))
        assert stack.icmp is not None
        assert stack.icmp.icmp_type() == 8
        assert stack.icmp.identifier() == 99
        assert stack.icmp.sequence() == 3

    def test_echo_reply(self):
        frame = build_icmp_echo("8.8.8.8", "10.0.0.1", reply=True)
        stack = parse_stack(Mbuf(frame))
        assert stack.icmp.icmp_type() == 0

    def test_checksum_valid(self):
        from repro.packet import checksum16
        frame = build_icmp_echo("1.1.1.1", "2.2.2.2", payload=b"ping!")
        stack = parse_stack(Mbuf(frame))
        message = frame[stack.icmp.offset:]
        assert checksum16(message) == 0

    @pytest.mark.parametrize("mode", ["codegen", "interp"])
    def test_filterable(self, mode):
        f = compile_filter("icmp.type = 8 and ipv4", mode=mode)
        request = Mbuf(build_icmp_echo("10.0.0.1", "8.8.8.8"))
        reply = Mbuf(build_icmp_echo("8.8.8.8", "10.0.0.1", reply=True))
        assert f.packet_filter(request).matched
        assert not f.packet_filter(reply).matched

    def test_packet_subscription(self):
        got = []
        runtime = Runtime(RuntimeConfig(cores=1), filter_str="icmp",
                          datatype="packet", callback=got.append)
        packets = ping_flow(FlowSpec("10.0.0.5", "171.64.4.4", 777, 0),
                            count=2)
        runtime.run(iter(packets))
        assert len(got) == 4  # 2 requests + 2 replies

    def test_ping_flow_shape(self):
        packets = ping_flow(FlowSpec("10.0.0.5", "171.64.4.4", 777, 0),
                            count=3)
        types = [parse_stack(m).icmp.icmp_type() for m in packets]
        assert types == [8, 0, 8, 0, 8, 0]
