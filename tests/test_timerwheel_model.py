"""Model-based property test: the timer wheel vs a naive oracle.

The oracle is a plain dict of deadlines scanned linearly — trivially
correct, O(n) per advance. The wheel must agree with it through any
interleaving of schedules, reschedules, cancellations, and advances.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.conntrack import TimerWheel


class WheelVsOracle(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.wheel = TimerWheel(tick=0.5, num_slots=16)
        self.oracle = {}
        self.now = 0.0
        self.fired_wheel = []
        self.fired_oracle = []

    keys = Bundle("keys")

    @rule(target=keys, key=st.integers(0, 30))
    def make_key(self, key):
        return key

    @rule(key=keys, delay=st.floats(0.1, 40.0))
    def schedule(self, key, delay):
        fire_at = self.now + delay
        self.wheel.schedule(key, fire_at)
        self.oracle[key] = fire_at

    @rule(key=keys)
    def cancel(self, key):
        self.wheel.cancel(key)
        self.oracle.pop(key, None)

    @rule(step=st.floats(0.0, 15.0))
    def advance(self, step):
        self.now += step
        fired = self.wheel.advance(self.now)
        expected = [key for key, deadline in self.oracle.items()
                    if deadline <= self.now]
        for key in expected:
            del self.oracle[key]
        assert sorted(fired) == sorted(expected), (
            f"at t={self.now}: wheel fired {sorted(fired)}, "
            f"oracle expected {sorted(expected)}"
        )
        self.fired_wheel.extend(fired)
        self.fired_oracle.extend(expected)

    @invariant()
    def live_sets_agree(self):
        assert set(self.oracle) == {
            key for key in self.oracle if key in self.wheel
        }
        assert len(self.wheel) == len(self.oracle)


WheelVsOracle.TestCase.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None)
TestWheelVsOracle = WheelVsOracle.TestCase
