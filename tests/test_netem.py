"""Tests for the seeded link-impairment layer (repro.netem).

Covers the Gilbert-Elliott model, the trace record/replay format,
frame corruption and checksum verification, the receiver mitigation
policies (quarantine, disable-and-repair), the impairment ledger's
conservation invariant, and the runtime integration (zero-cost when
disabled, byte-identical across backends and worker counts).
"""

import dataclasses
import io
import json
from random import Random

import pytest

from repro import Runtime, RuntimeConfig
from repro.errors import ConfigError
from repro.netem import (CLEAN, Decision, GilbertElliott,
                         GilbertElliottChain, ImpairedLink,
                         ImpairmentConfig, ImpairmentLedger,
                         ImpairmentTrace, check_impairment_accounting,
                         corrupt_frame, fix_checksums,
                         frame_checksums_ok)
from repro.packet.batch import PackedBatch
from repro.packet.builder import build_tcp_packet, build_udp_packet
from repro.packet.mbuf import Mbuf
from repro.traffic import CampusTrafficGenerator


def _campus(seed=1, duration=0.1, gbps=0.05):
    return list(CampusTrafficGenerator(seed=seed).packets(
        duration=duration, gbps=gbps))


def _run(impairment, *, cores=2, parallel=False, columnar=True,
         seed=1, **kwargs):
    config = RuntimeConfig(cores=cores, parallel=parallel,
                           columnar=columnar, impairment=impairment,
                           **kwargs)
    runtime = Runtime(config, filter_str="tcp", datatype="connection",
                      callback=lambda obj: None)
    return runtime.run(iter(_campus(seed=seed)))


class TestGilbertElliott:
    def test_parse_forms(self):
        ge = GilbertElliott.parse("0.01,0.25")
        assert (ge.p, ge.r, ge.loss_bad, ge.loss_good) == \
            (0.01, 0.25, 1.0, 0.0)
        ge = GilbertElliott.parse("0.01, 0.25, 0.8, 0.001")
        assert (ge.loss_bad, ge.loss_good) == (0.8, 0.001)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ConfigError):
            GilbertElliott.parse("0.01")
        with pytest.raises(ConfigError):
            GilbertElliott.parse("0.01,x")
        with pytest.raises(ConfigError):
            GilbertElliott(p=1.5, r=0.1)

    def test_chain_deterministic(self):
        params = GilbertElliott(p=0.05, r=0.3)
        a = GilbertElliottChain(params, Random(42))
        b = GilbertElliottChain(params, Random(42))
        assert [a.step() for _ in range(500)] == \
            [b.step() for _ in range(500)]

    def test_chain_is_bursty(self):
        """Losses cluster: runs of consecutive losses are much longer
        than an independent model with the same mean rate produces."""
        params = GilbertElliott(p=0.01, r=0.2)  # mean bad dwell: 5 pkts
        chain = GilbertElliottChain(params, Random(7))
        losses = [chain.step() for _ in range(20000)]
        runs, current = [], 0
        for lost in losses:
            if lost:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        assert runs, "no loss bursts sampled"
        assert max(runs) >= 3  # geometric dwell produces multi-loss runs
        assert sum(losses) / len(losses) < 0.2


class TestImpairmentConfig:
    def test_rate_validation(self):
        with pytest.raises(ConfigError):
            ImpairmentConfig(loss_rate=1.5)
        with pytest.raises(ConfigError):
            ImpairmentConfig(reorder_rate=0.1, reorder_depth=0)
        with pytest.raises(ConfigError):
            ImpairmentConfig(jitter_s=-1.0)

    def test_silent_needs_corruption(self):
        with pytest.raises(ConfigError):
            ImpairmentConfig(corrupt_silent=True)
        ImpairmentConfig(corrupt_rate=0.1, corrupt_silent=True)

    def test_trace_conflicts_with_model(self):
        with pytest.raises(ConfigError):
            ImpairmentConfig(trace_path="t", loss_rate=0.1)
        with pytest.raises(ConfigError):
            ImpairmentConfig(trace_path="t", record_path="r")

    def test_enabled_flags(self):
        assert not ImpairmentConfig().enabled
        assert ImpairmentConfig(loss_rate=0.1).impairs
        assert ImpairmentConfig(quarantine=True).mitigates
        assert ImpairmentConfig(record_path="r").enabled


class TestTrace:
    def test_round_trip(self):
        trace = ImpairmentTrace(seed=9)
        trace.record(0, Decision(drop=True))
        trace.record(3, Decision(corrupt_flips=4, corrupt_silent=True))
        trace.record(5, Decision(dup=True))
        trace.record(7, Decision(delay=0.00125))
        trace.record(9, Decision(displace=6))
        trace.record(10, CLEAN)  # clean decisions are not recorded
        loaded = ImpairmentTrace.from_lines(trace.to_lines())
        assert loaded.seed == 9
        assert loaded.max_index == 9
        for index in range(12):
            a, b = trace.decision_for(index), loaded.decision_for(index)
            assert (a.drop, a.corrupt_flips, a.corrupt_silent, a.dup,
                    a.delay, a.displace) == \
                (b.drop, b.corrupt_flips, b.corrupt_silent, b.dup,
                 b.delay, b.displace)
        assert loaded.decision_for(10).clean

    def test_save_load_file(self, tmp_path):
        path = tmp_path / "impair.trace"
        trace = ImpairmentTrace(seed=4)
        trace.record(2, Decision(drop=True))
        trace.save(path)
        text = path.read_text()
        assert text.startswith("#repro-impair-trace v1 seed=4")
        assert ImpairmentTrace.load(path).decision_for(2).drop

    def test_malformed_lines_rejected(self):
        with pytest.raises(ConfigError):
            ImpairmentTrace.from_lines(["#bogus header"])
        with pytest.raises(ConfigError):
            ImpairmentTrace.from_lines(
                ["#repro-impair-trace v1 seed=0", "3 explode"])


class TestCorruption:
    def _tcp_frame(self, payload=b"x" * 64):
        return build_tcp_packet("10.0.0.1", "10.0.0.2", 1234, 443,
                                payload=payload, seq=100, flags=0x18)

    def test_builder_frames_verify_clean(self):
        assert frame_checksums_ok(self._tcp_frame()) is True
        udp = build_udp_packet("10.0.0.1", "10.0.0.2", 53, 53,
                               payload=b"q" * 16)
        assert frame_checksums_ok(udp) is True

    def test_non_ip_is_unverifiable(self):
        assert frame_checksums_ok(b"\x00" * 60) is None

    def test_detectable_corruption_fails_checksums(self):
        frame = self._tcp_frame()
        bad = corrupt_frame(frame, flips=3, silent=False, rng=Random(1))
        assert bad != frame
        assert frame_checksums_ok(bad) is False

    def test_silent_corruption_verifies_clean(self):
        frame = self._tcp_frame()
        bad = corrupt_frame(frame, flips=3, silent=True, rng=Random(1))
        assert bad != frame
        assert frame_checksums_ok(bad) is True

    def test_corruption_deterministic(self):
        frame = self._tcp_frame()
        assert corrupt_frame(frame, 5, False, Random(3)) == \
            corrupt_frame(frame, 5, False, Random(3))

    def test_fix_checksums_repairs(self):
        frame = bytearray(self._tcp_frame())
        frame[-1] ^= 0xFF  # damage the payload
        assert frame_checksums_ok(bytes(frame)) is False
        fix_checksums(frame)
        assert frame_checksums_ok(bytes(frame)) is True


def _mbufs(count=40, port=0):
    frames = [build_tcp_packet("10.0.0.1", "10.0.0.2", 1000 + i, 80,
                               payload=bytes([i % 256]) * 32,
                               seq=i * 100)
              for i in range(count)]
    return [Mbuf(frame, 0.001 * i, port) for i, frame in
            enumerate(frames)]


def _collect(link, mbufs):
    return list(link.wrap(iter(mbufs)))


class TestImpairedLink:
    def test_noop_model_passes_originals_through(self):
        mbufs = _mbufs(8)
        link = ImpairedLink(ImpairmentConfig(quarantine=True))
        out = _collect(link, mbufs)
        assert out == mbufs  # identical objects, zero copies
        assert link.ledger.offered == link.ledger.delivered == 8

    def test_loss_accounted(self):
        mbufs = _mbufs(200)
        link = ImpairedLink(ImpairmentConfig(seed=3, loss_rate=0.2))
        out = _collect(link, mbufs)
        ledger = link.ledger
        assert ledger.dropped["loss"] > 0
        assert len(out) == ledger.delivered
        ledger.check()

    def test_duplication_and_reorder(self):
        mbufs = _mbufs(200)
        link = ImpairedLink(ImpairmentConfig(
            seed=3, duplicate_rate=0.1, reorder_rate=0.2,
            reorder_depth=5))
        out = _collect(link, mbufs)
        ledger = link.ledger
        assert ledger.duplicated > 0 and ledger.reordered > 0
        assert len(out) == 200 + ledger.duplicated
        # Every offered frame survives (no loss model), some displaced.
        assert {bytes(m.data) for m in out} == \
            {bytes(m.data) for m in mbufs}
        order = [m.data[14 + 20 + 1] for m in out]  # src-port low byte
        assert order != sorted(order) or ledger.reordered == 0

    def test_timestamps_stay_monotone_under_jitter(self):
        mbufs = _mbufs(300)
        link = ImpairedLink(ImpairmentConfig(
            seed=5, jitter_s=0.01, reorder_rate=0.3, reorder_depth=8))
        out = _collect(link, mbufs)
        stamps = [m.timestamp for m in out]
        assert stamps == sorted(stamps)
        assert link.ledger.delayed > 0

    def test_deterministic_per_seed(self):
        config = ImpairmentConfig(seed=11, loss_rate=0.1,
                                  corrupt_rate=0.1, duplicate_rate=0.1,
                                  reorder_rate=0.2)
        a = _collect(ImpairedLink(config), _mbufs(150))
        b = _collect(ImpairedLink(config), _mbufs(150))
        assert [(bytes(m.data), m.timestamp) for m in a] == \
            [(bytes(m.data), m.timestamp) for m in b]
        other = _collect(
            ImpairedLink(dataclasses.replace(config, seed=12)),
            _mbufs(150))
        assert [(bytes(m.data), m.timestamp) for m in a] != \
            [(bytes(m.data), m.timestamp) for m in other]

    def test_packed_batch_shape_preserved(self):
        mbufs = _mbufs(64)
        batch = PackedBatch.from_rows(
            [(m.data, m.timestamp, m.port) for m in mbufs], queue=3)
        config = ImpairmentConfig(seed=11, loss_rate=0.1,
                                  duplicate_rate=0.1, reorder_rate=0.2)
        out = list(ImpairedLink(config).wrap(iter([batch])))
        assert all(type(item) is PackedBatch for item in out)
        assert out[0].queue == 3
        # Same decisions as the mbuf-shaped stream: identical frames.
        flat = [(bytes(f), ts, port) for b in out
                for f, ts, port in b.frames()]
        mbuf_out = _collect(ImpairedLink(config), mbufs)
        assert flat == [(bytes(m.data), m.timestamp, m.port)
                        for m in mbuf_out]

    def test_quarantine_drops_detectable_only(self):
        config = ImpairmentConfig(seed=2, corrupt_rate=0.3,
                                  quarantine=True)
        link = ImpairedLink(config)
        _collect(link, _mbufs(200))
        ledger = link.ledger
        assert ledger.corrupted > 0
        assert ledger.dropped["quarantine"] == ledger.corrupted
        ledger.check()

    def test_silent_corruption_evades_quarantine(self):
        config = ImpairmentConfig(seed=2, corrupt_rate=0.3,
                                  corrupt_silent=True, quarantine=True)
        link = ImpairedLink(config)
        out = _collect(link, _mbufs(200))
        ledger = link.ledger
        assert ledger.corrupted_silent == ledger.corrupted > 0
        assert ledger.dropped["quarantine"] == 0
        assert len(out) == 200

    def test_disable_and_repair_cycle(self):
        """A persistently corrupting link trips the disable threshold;
        frames during the repair window are shed and attributed; the
        link re-enables after repair_time."""
        config = ImpairmentConfig(seed=6, corrupt_rate=0.5,
                                  disable_threshold=3,
                                  disable_window=32,
                                  repair_time=0.02)
        link = ImpairedLink(config)
        _collect(link, _mbufs(400))
        ledger = link.ledger
        events = [e[2] for e in ledger.link_events]
        assert "disable" in events and "enable" in events
        assert ledger.dropped["link_disabled"] > 0
        assert ledger.per_link[0]["disables"] >= 1
        ledger.check()

    def test_per_link_attribution(self):
        mbufs = _mbufs(100, port=0) + _mbufs(100, port=1)
        mbufs.sort(key=lambda m: m.timestamp)
        link = ImpairedLink(ImpairmentConfig(seed=1, loss_rate=0.2))
        _collect(link, mbufs)
        per_link = link.ledger.per_link
        assert set(per_link) == {0, 1}
        for port in (0, 1):
            row = per_link[port]
            assert row["offered"] == 100
            assert row["offered"] == row["delivered"] + row["loss"]

    def test_record_then_replay_identical(self, tmp_path):
        path = tmp_path / "link.trace"
        model = ImpairmentConfig(seed=8, loss_rate=0.1,
                                 corrupt_rate=0.1, duplicate_rate=0.1,
                                 reorder_rate=0.2, record_path=str(path))
        recorded = _collect(ImpairedLink(model), _mbufs(150))
        # A different seed replaying the trace reproduces everything,
        # including the exact corrupted bits (content keys off the
        # trace's recorded seed).
        replay = ImpairmentConfig(seed=999, trace_path=str(path))
        replayed = _collect(ImpairedLink(replay), _mbufs(150))
        assert [(bytes(m.data), m.timestamp) for m in recorded] == \
            [(bytes(m.data), m.timestamp) for m in replayed]


class TestLedger:
    def test_conservation_check(self):
        ledger = ImpairmentLedger()
        ledger.record_offered(0, 100)
        ledger.record_offered(0, 100)
        ledger.record_delivered(0, 100)
        with pytest.raises(AssertionError):
            ledger.check()
        ledger.record_drop(0, 100, "loss")
        ledger.check()

    def test_to_dict_json_round_trip(self):
        link = ImpairedLink(ImpairmentConfig(seed=3, loss_rate=0.2,
                                             duplicate_rate=0.1))
        _collect(link, _mbufs(100))
        payload = link.ledger.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["offered"] == 100
        assert payload["config"]["loss_rate"] == 0.2

    def test_describe_mentions_goodput(self):
        link = ImpairedLink(ImpairmentConfig(seed=3, loss_rate=0.2))
        _collect(link, _mbufs(100))
        text = link.ledger.describe()
        assert "goodput" in text and "lost=" in text


IMPAIR = ImpairmentConfig(
    seed=7, loss_rate=0.05, burst=GilbertElliott(p=0.02, r=0.3),
    corrupt_rate=0.02, reorder_rate=0.05, duplicate_rate=0.02,
    jitter_s=0.0005, quarantine=True, disable_threshold=3,
    disable_window=64, repair_time=0.02)


class TestRuntimeIntegration:
    def test_disabled_is_byte_identical(self):
        base = _run(None)
        noop = _run(ImpairmentConfig(seed=9))
        assert noop.impairment is None
        assert base.stats.to_dict() == noop.stats.to_dict()

    def test_ledger_attached_and_balanced(self):
        report = _run(IMPAIR)
        assert report.impairment is not None
        check_impairment_accounting(report)
        assert report.impairment.delivered == \
            report.stats.ingress_packets

    def test_backend_parity_across_worker_counts(self):
        baseline = None
        for cores in (1, 2, 4):
            seq = _run(IMPAIR, cores=cores, parallel=False)
            par = _run(IMPAIR, cores=cores, parallel=True)
            assert seq.stats.to_dict() == par.stats.to_dict(), \
                f"backends diverged at {cores} cores"
            assert seq.impairment.to_dict() == par.impairment.to_dict()
            if baseline is None:
                baseline = seq.impairment.to_dict()
            else:
                # The link runs parent-side: the ledger cannot depend
                # on the worker count at all.
                assert seq.impairment.to_dict() == baseline
        check_impairment_accounting(par)

    def test_columnar_and_mbuf_paths_agree(self):
        col = _run(IMPAIR, columnar=True)
        row = _run(IMPAIR, columnar=False)
        assert col.impairment.to_dict() == row.impairment.to_dict()

    def test_overload_chain_balances(self):
        report = _run(IMPAIR, overload_policy="ladder")
        check_impairment_accounting(report)

    def test_export_families_render(self):
        from repro.telemetry.export import (impairment_lines,
                                            render_metrics)
        report = _run(IMPAIR)
        text = render_metrics(report.stats,
                              impairment=report.impairment)
        assert "repro_impair_offered_packets_total" in text
        assert 'cause="quarantine"' in text or \
            report.impairment.dropped["quarantine"] == 0
        assert "repro_impair_goodput_fraction" in text
        clean = render_metrics(_run(None).stats)
        assert "repro_impair" not in clean
        lines = [json.loads(line) for line in
                 impairment_lines(report.impairment)]
        assert lines[0]["event"] == "totals"
        assert lines[-1]["event"] == "summary"
        assert lines[-1]["balanced"] is True

    def test_write_impairment_stream(self):
        from repro.telemetry.export import write_impairment
        report = _run(IMPAIR)
        sink = io.StringIO()
        count = write_impairment(sink, report.impairment)
        written = [l for l in sink.getvalue().splitlines() if l]
        assert len(written) == count >= 2


class TestAdaptiveReassembly:
    def _pdu(self, seq, payload=b"d" * 8, ts=0.0):
        from repro.stream.pdu import L4Pdu
        return L4Pdu(mbuf=Mbuf(b"\x00" * 60, ts, 0), payload=payload,
                     seq=seq, flags=0x18, from_orig=True, timestamp=ts)

    def test_window_grows_instead_of_dropping(self):
        from repro.stream.reassembly import LazyReassembler
        reasm = LazyReassembler(capacity=2, adaptive=True,
                                max_capacity=16)
        reasm.push(self._pdu(0))
        # A hole at seq 8, then a deep out-of-order run that overflows
        # a fixed 2-slot ring.
        for i in range(2, 8):
            reasm.push(self._pdu(8 * i))
        assert reasm.orig.capacity > 2
        assert reasm.overflow_drops == 0
        assert reasm.orig.window_grows > 0
        # Filling the hole releases everything that was held.
        out = reasm.push(self._pdu(8))
        assert len(out) == 7

    def test_fixed_window_still_drops(self):
        from repro.stream.reassembly import LazyReassembler
        reasm = LazyReassembler(capacity=2, adaptive=False)
        reasm.push(self._pdu(0))
        for i in range(2, 8):
            reasm.push(self._pdu(8 * i))
        assert reasm.overflow_drops == 4

    def test_window_shrinks_after_inorder_streak(self):
        from repro.stream.reassembly import (ADAPTIVE_SHRINK_STREAK,
                                             LazyReassembler)
        reasm = LazyReassembler(capacity=64, adaptive=True,
                                min_capacity=4)
        for i in range(ADAPTIVE_SHRINK_STREAK + 1):
            reasm.push(self._pdu(8 * i))
        assert reasm.orig.capacity == 32
        assert reasm.orig.window_shrinks == 1

    def test_stats_sink_mirrors_counters(self):
        from types import SimpleNamespace
        from repro.stream.reassembly import LazyReassembler
        stats = SimpleNamespace(reasm_dup_segments=0,
                                reasm_overlap_segments=0,
                                reasm_stale_retransmits=0,
                                reasm_overflow_drops=0,
                                reasm_window_grows=0,
                                reasm_window_shrinks=0)
        reasm = LazyReassembler(capacity=2, adaptive=True,
                                max_capacity=8, stats=stats)
        reasm.push(self._pdu(0))
        for i in range(2, 6):
            reasm.push(self._pdu(8 * i))
        assert stats.reasm_window_grows == reasm.orig.window_grows > 0


class TestReassemblyDiscardAccounting:
    """Satellite: the previously silent discard paths are now counted
    and surfaced (dup retransmits, partial overlaps, stale held
    copies)."""

    def _pdu(self, seq, payload, ts=0.0):
        from repro.stream.pdu import L4Pdu
        return L4Pdu(mbuf=Mbuf(b"\x00" * 60, ts, 0), payload=payload,
                     seq=seq, flags=0x18, from_orig=True, timestamp=ts)

    def test_duplicate_counted(self):
        from repro.stream.reassembly import LazyReassembler
        reasm = LazyReassembler()
        reasm.push(self._pdu(0, b"abcd"))
        assert reasm.push(self._pdu(0, b"abcd")) == []
        assert reasm.dup_segments == 1

    def test_overlap_counted_and_tail_forwarded(self):
        from repro.stream.reassembly import LazyReassembler
        reasm = LazyReassembler()
        reasm.push(self._pdu(0, b"abcd"))
        out = reasm.push(self._pdu(2, b"cdEF"))
        assert [s.payload for s in out] == [b"EF"]
        assert reasm.overlap_segments == 1
        assert reasm.dup_segments == 0

    def test_stale_retransmit_counted(self):
        """A held out-of-order copy wholly superseded by a racing
        retransmit used to vanish without a trace."""
        from repro.stream.reassembly import LazyReassembler
        reasm = LazyReassembler()
        reasm.push(self._pdu(0, b"aaaa"))          # expected -> 4
        reasm.push(self._pdu(8, b"cccc"))          # held: hole at 4
        reasm.push(self._pdu(6, b"bb"))            # held: inside hole
        # A fat retransmit covers 4..12 in one segment: both held
        # copies are now redundant; 6 is wholly stale.
        out = reasm.push(self._pdu(4, b"bbccdddd"))
        assert b"".join(s.payload for s in out) == b"bbccdddd"
        assert reasm.stale_retransmits >= 1

    def test_counters_reach_aggregate_stats(self):
        report = _run(IMPAIR, ooo_adaptive=True)
        d = report.stats.to_dict()
        for key in ("reasm_dup_segments", "reasm_overlap_segments",
                    "reasm_stale_retransmits", "reasm_overflow_drops",
                    "reasm_window_grows", "reasm_window_shrinks"):
            assert key in d

    def test_funnel_table_mentions_discards(self):
        from repro.telemetry.funnel import funnel_table
        report = _run(None)
        stats = report.stats
        assert "reassembly discards" not in funnel_table(stats)
        stats.reasm_dup_segments = 3
        assert "reassembly discards" in funnel_table(stats)
        assert "dup=3" in funnel_table(stats)
