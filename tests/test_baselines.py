"""Tests for the IDS baselines and the Figure 6 ordering claim."""

import pytest

from repro import Runtime, RuntimeConfig
from repro.baselines import (
    SnortLikeAnalyzer,
    SuricataLikeAnalyzer,
    ZeekLikeAnalyzer,
)
from repro.traffic import FlowSpec, HttpsWorkloadGenerator, tls_flow


@pytest.fixture(scope="module")
def workload():
    gen = HttpsWorkloadGenerator(seed=1, response_bytes=128 * 1024)
    return gen.packets(requests_per_second=30, duration=0.5)


class TestBaselineCorrectness:
    @pytest.mark.parametrize("cls", [ZeekLikeAnalyzer, SnortLikeAnalyzer,
                                     SuricataLikeAnalyzer])
    def test_detects_matching_sni(self, cls, workload):
        report = cls(sni_pattern="nginx").analyze(iter(workload))
        assert report.matches == 15  # one per request

    @pytest.mark.parametrize("cls", [ZeekLikeAnalyzer, SnortLikeAnalyzer,
                                     SuricataLikeAnalyzer])
    def test_no_match_for_other_sni(self, cls):
        packets = tls_flow(FlowSpec("10.0.0.1", "1.1.1.1", 1000, 443),
                           "other.example")
        report = cls(sni_pattern="nginx").analyze(iter(packets))
        assert report.matches == 0
        assert report.packets == len(packets)

    def test_snort_scans_everything(self, workload):
        """The defining Snort behaviour: content scan over all payload."""
        analyzer = SnortLikeAnalyzer(sni_pattern="nginx")
        report = analyzer.analyze(iter(workload))
        assert analyzer.scanned_bytes >= report.payload_bytes * 0.99


class TestFigure6Ordering:
    def test_single_core_ordering(self, workload):
        """Retina > Suricata > Zeek > Snort in zero-loss throughput,
        with Retina 5-100x above the others (the paper's headline)."""
        results = {}
        for cls in (ZeekLikeAnalyzer, SnortLikeAnalyzer,
                    SuricataLikeAnalyzer):
            report = cls(sni_pattern="nginx").analyze(iter(workload))
            results[report.name] = report.max_zero_loss_gbps(cores=1)
        runtime = Runtime(
            RuntimeConfig(cores=1, hardware_filter=False),
            filter_str="tls.sni ~ 'nginx'",
            datatype="connection",
            callback=lambda r: None,
        )
        retina_report = runtime.run(iter(workload))
        retina = retina_report.stats.max_zero_loss_gbps(1)
        assert retina > results["suricata"] > results["zeek"] \
            > results["snort"]
        assert 4 < retina / results["suricata"] < 25
        assert retina / results["snort"] > 50

    def test_processed_gbps_saturates(self, workload):
        report = ZeekLikeAnalyzer("nginx").analyze(iter(workload))
        ceiling = report.max_zero_loss_gbps()
        assert report.processed_gbps(ceiling / 2) == ceiling / 2
        assert report.processed_gbps(ceiling * 3) == ceiling
        assert report.loss_at(ceiling * 2) == pytest.approx(0.5)
        assert report.loss_at(ceiling / 2) == 0.0
