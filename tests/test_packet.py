"""Unit tests for the packet substrate (mbuf, headers, builder)."""

import ipaddress
import struct

import pytest

from repro.errors import PacketParseError
from repro.packet import (
    ETHERTYPE_IPV4,
    ETHERTYPE_IPV6,
    Ethernet,
    Ipv4,
    Ipv6,
    Mbuf,
    Tcp,
    TcpFlags,
    Udp,
    build_ethernet,
    build_tcp_packet,
    build_udp_packet,
    checksum16,
    parse_stack,
)
from repro.packet.ethernet import ETHERTYPE_VLAN


def make_tcp_mbuf(**kwargs):
    defaults = dict(
        src="10.0.0.1", dst="192.168.1.2", src_port=12345, dst_port=443,
        payload=b"hello", seq=1000, flags=int(TcpFlags.PSH | TcpFlags.ACK),
    )
    defaults.update(kwargs)
    return Mbuf(build_tcp_packet(**defaults))


class TestEthernet:
    def test_parse_fields(self):
        mbuf = make_tcp_mbuf()
        eth = Ethernet.parse(mbuf)
        assert eth.next_protocol() == ETHERTYPE_IPV4
        assert eth.header_len() == 14
        assert len(eth.src_mac()) == 6
        assert len(eth.dst_mac()) == 6

    def test_truncated_frame_raises(self):
        with pytest.raises(PacketParseError):
            Ethernet.parse(Mbuf(b"\x00" * 10))

    def test_vlan_tag_skipped(self):
        inner = build_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2)[14:]
        tag = struct.pack("!HH", 100, ETHERTYPE_IPV4)  # TCI=100, inner type
        frame = build_ethernet(tag + inner, ETHERTYPE_VLAN)
        eth = Ethernet.parse(Mbuf(frame))
        assert eth.vlan_ids() == (100,)
        assert eth.header_len() == 18
        assert eth.next_protocol() == ETHERTYPE_IPV4
        ip = Ipv4.parse_from(eth)
        assert str(ip.src_addr()) == "10.0.0.1"


class TestIpv4:
    def test_fields(self):
        mbuf = make_tcp_mbuf(ttl=17)
        ip = Ipv4.parse_from(Ethernet.parse(mbuf))
        assert ip.version() == 4
        assert ip.ttl() == 17
        assert ip.protocol() == 6
        assert str(ip.src_addr()) == "10.0.0.1"
        assert str(ip.dst_addr()) == "192.168.1.2"
        assert ip.total_length() == len(mbuf.data) - 14

    def test_checksum_valid(self):
        mbuf = make_tcp_mbuf()
        ip = Ipv4.parse_from(Ethernet.parse(mbuf))
        header = mbuf.data[14:14 + ip.header_len()]
        assert checksum16(header) == 0

    def test_wrong_ethertype_raises(self):
        frame = build_ethernet(b"\x00" * 40, 0x1234)
        with pytest.raises(PacketParseError):
            Ipv4.parse_from(Ethernet.parse(Mbuf(frame)))

    def test_bad_version_raises(self):
        payload = bytearray(build_tcp_packet("1.2.3.4", "5.6.7.8", 1, 2))
        payload[14] = (6 << 4) | 5  # corrupt version nibble
        with pytest.raises(PacketParseError):
            Ipv4.parse_from(Ethernet.parse(Mbuf(bytes(payload))))

    def test_addr_u32(self):
        mbuf = make_tcp_mbuf(src="1.2.3.4")
        ip = Ipv4.parse_from(Ethernet.parse(mbuf))
        assert ip.src_addr_u32() == 0x01020304


class TestIpv6:
    def test_fields(self):
        mbuf = Mbuf(build_tcp_packet("2001:db8::1", "2001:db8::2", 1, 443))
        eth = Ethernet.parse(mbuf)
        assert eth.next_protocol() == ETHERTYPE_IPV6
        ip = Ipv6.parse_from(eth)
        assert ip.version() == 6
        assert str(ip.src_addr()) == "2001:db8::1"
        assert ip.next_protocol() == 6
        assert ip.header_len() == 40
        tcp = Tcp.parse_from(ip)
        assert tcp.dst_port() == 443

    def test_extension_header_skipped(self):
        # Hand-build: IPv6 fixed header (next=0 hop-by-hop) + 8-byte ext
        # (next=6 TCP) + minimal TCP header.
        tcp_hdr = struct.pack("!HHIIBBHHH", 1, 2, 0, 0, 5 << 4, 0x02, 0, 0, 0)
        ext = struct.pack("!BB6x", 6, 0)
        src = ipaddress.ip_address("2001:db8::1").packed
        dst = ipaddress.ip_address("2001:db8::2").packed
        fixed = struct.pack("!IHBB16s16s", 6 << 28, len(ext) + len(tcp_hdr),
                            0, 64, src, dst)
        frame = build_ethernet(fixed + ext + tcp_hdr, ETHERTYPE_IPV6)
        ip = Ipv6.parse_from(Ethernet.parse(Mbuf(frame)))
        assert ip.next_header() == 0
        assert ip.next_protocol() == 6
        assert ip.header_len() == 48
        assert Tcp.parse_from(ip).src_port() == 1


class TestTcp:
    def test_fields(self):
        mbuf = make_tcp_mbuf(seq=7777, ack=8888)
        tcp = Tcp.parse_from(Ipv4.parse_from(Ethernet.parse(mbuf)))
        assert tcp.src_port() == 12345
        assert tcp.dst_port() == 443
        assert tcp.seq_no() == 7777
        assert tcp.ack_no() == 8888
        assert tcp.flags() == TcpFlags.PSH | TcpFlags.ACK

    def test_synack_detection(self):
        mbuf = make_tcp_mbuf(flags=int(TcpFlags.SYN | TcpFlags.ACK))
        tcp = Tcp.parse_from(Ipv4.parse_from(Ethernet.parse(mbuf)))
        assert tcp.synack()
        mbuf = make_tcp_mbuf(flags=int(TcpFlags.SYN))
        tcp = Tcp.parse_from(Ipv4.parse_from(Ethernet.parse(mbuf)))
        assert not tcp.synack()

    def test_checksum_valid(self):
        mbuf = make_tcp_mbuf(payload=b"data bytes here")
        stack = parse_stack(mbuf)
        from repro.packet.builder import _pseudo_header
        segment = mbuf.data[stack.tcp.offset:]
        pseudo = _pseudo_header("10.0.0.1", "192.168.1.2", 6, len(segment))
        assert checksum16(pseudo + segment) == 0

    def test_not_tcp_raises(self):
        mbuf = Mbuf(build_udp_packet("1.1.1.1", "2.2.2.2", 53, 53))
        ip = Ipv4.parse_from(Ethernet.parse(mbuf))
        with pytest.raises(PacketParseError):
            Tcp.parse_from(ip)


class TestUdp:
    def test_fields(self):
        mbuf = Mbuf(build_udp_packet("1.1.1.1", "8.8.8.8", 5353, 53,
                                     payload=b"q" * 20))
        udp = Udp.parse_from(Ipv4.parse_from(Ethernet.parse(mbuf)))
        assert udp.src_port() == 5353
        assert udp.dst_port() == 53
        assert udp.length() == 28
        assert udp.header_len() == 8


class TestParseStack:
    def test_tcp_stack(self):
        stack = parse_stack(make_tcp_mbuf(payload=b"abcdef"))
        assert stack.eth is not None
        assert stack.ip is not None
        assert stack.tcp is not None
        assert stack.udp is None
        assert stack.transport is stack.tcp
        assert stack.l4_payload() == b"abcdef"

    def test_udp_stack(self):
        mbuf = Mbuf(build_udp_packet("1.1.1.1", "2.2.2.2", 1, 2, b"xy"))
        stack = parse_stack(mbuf)
        assert stack.udp is not None and stack.tcp is None
        assert stack.l4_payload() == b"xy"

    def test_l4_payload_ignores_padding(self):
        # Ethernet frames can be padded; l4_payload must honor IP length.
        frame = build_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2, payload=b"ab")
        stack = parse_stack(Mbuf(frame + b"\x00" * 10))
        assert stack.l4_payload() == b"ab"

    def test_garbage_is_partial(self):
        stack = parse_stack(Mbuf(b"\xff" * 64))
        assert stack.eth is not None  # ethernet always "parses"
        assert stack.ip is None

    def test_short_frame(self):
        stack = parse_stack(Mbuf(b"\x01"))
        assert stack.eth is None


class TestChecksum16:
    def test_known_vector(self):
        # Classic example from RFC 1071 discussions.
        data = bytes.fromhex("00010f2000348802")
        assert checksum16(data) == 0xFFFF - ((0x0001 + 0x0F20 + 0x0034 + 0x8802) % 0xFFFF)

    def test_odd_length_padded(self):
        assert checksum16(b"\x01") == checksum16(b"\x01\x00")
