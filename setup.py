"""Legacy setup shim.

The execution environment is offline and lacks the ``wheel`` package, so
PEP 517 editable installs cannot build. This shim lets
``pip install -e .`` fall back to ``setup.py develop``.
"""

from setuptools import setup

setup()
