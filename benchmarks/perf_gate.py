"""CI perf gate for the sequential hot path.

Compares a freshly measured ``BENCH_hotpath.json`` against the
committed one and fails when the fresh sequential throughput regresses
more than ``PERF_GATE_TOLERANCE`` (default 20%) below the recorded
value. Usage::

    python benchmarks/perf_gate.py COMMITTED.json FRESH.json

The tolerance absorbs shared-runner jitter; a >20% drop on the same
workload is a real regression (an accidentally disabled columnar path
shows up as ~60%).
"""

from __future__ import annotations

import json
import os
import sys


def main(argv) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1]) as handle:
        committed = json.load(handle)
    with open(argv[2]) as handle:
        fresh = json.load(handle)
    recorded = committed["sequential"]["pkts_per_sec"]
    measured = fresh["sequential"]["pkts_per_sec"]
    tolerance = float(os.environ.get("PERF_GATE_TOLERANCE", "0.2"))
    floor = recorded * (1.0 - tolerance)
    print(f"recorded sequential: {recorded:,.0f} pkts/s "
          f"(columnar={committed['sequential'].get('columnar')})")
    print(f"measured sequential: {measured:,.0f} pkts/s "
          f"(columnar={fresh['sequential'].get('columnar')})")
    print(f"gate floor ({tolerance:.0%} tolerance): {floor:,.0f} pkts/s")
    if measured < floor:
        print("PERF GATE FAILED: fresh sequential throughput regressed "
              f"{1 - measured / recorded:.1%} below the recorded value",
              file=sys.stderr)
        return 1
    transport = fresh.get("transport", {})
    if "shm" in transport:
        # Hard ceiling on the shm path's serialized bytes per packet:
        # descriptor-only dispatch is ~8 B per *batch*, so anything
        # approaching one byte per packet means batches are silently
        # falling back to the pickled control channel (undersized
        # slots, a broken codec, ...). The ceiling is generous — the
        # healthy reading is ~8/batch_size ≈ 0.03 B/pkt.
        ceiling = float(os.environ.get("PERF_GATE_SHM_BPP_CEILING",
                                       "2.0"))
        shm_bpp = transport["shm"]["ipc_bytes_per_packet"]
        print(f"shm ipc_bytes_per_packet: {shm_bpp:.3f} "
              f"(ceiling {ceiling})")
        if shm_bpp > ceiling:
            print("PERF GATE FAILED: shm transport serialized "
                  f"{shm_bpp:.2f} B/pkt (> {ceiling}) — batches are "
                  "falling back to the pickled control channel",
                  file=sys.stderr)
            return 1
        ratio = transport.get("serialization_overhead_ratio", 0.0)
        print(f"shm vs queue serialization ratio: {ratio:,.0f}x")
    spans = fresh.get("sequential_spans")
    if spans is not None:
        # Informational only: the gate above guards the spans-disabled
        # path; the enabled overhead is recorded so drift is visible in
        # CI logs without flaking the build on tracing-cost jitter.
        print(f"spans-enabled sequential: {spans['pkts_per_sec']:,.0f} "
              f"pkts/s ({spans['overhead_vs_disabled']:.2f}x the "
              f"disabled cost, K={spans['span_sample']}, "
              f"ring={spans['flight_recorder_depth']})")
    print("perf gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
