"""Multi-tenant shared-filter benchmark: classify once, fan out N ways.

The acceptance harness for :mod:`repro.tenancy`. It measures, on the
campus workload, and writes to ``BENCH_tenancy.json`` at the repo root:

1. **Shared-table throughput** at N=8 tenants (one
   :class:`~repro.tenancy.runtime.TenantRuntime` decoding and
   classifying each burst once against the merged trie) vs **N
   independent evaluations** (eight plain :class:`~repro.Runtime`
   passes over the same traffic, one per subscription — what a user
   without the shared table would run). The tentpole target is >= 2x.
2. **Per-tenant equivalence**: with the hardware plane disabled (so a
   solo run sees the same ingress as the shared link), every tenant's
   aggregate stats out of the shared run are byte-identical to its solo
   run. Asserted unconditionally — this is the invariant that makes
   the shared fast path safe.
3. **Single-tenant overhead**: a one-tenant TenantRuntime vs the plain
   Runtime on the same subscription, so a regression of the multiplexer
   on the N=1 hot path shows up in the JSON.
4. **Live-reconfiguration overhead**: the same shared run with a
   mid-stream drop+add epoch swap, vs static.

Timing assertions are environment-sensitive, so they are gated behind
``BENCH_TENANCY_ASSERT_SPEEDUP=1``; the equivalence checks run
unconditionally. Env knobs: ``BENCH_TENANCY_DURATION`` (default 0.3
virtual seconds), ``BENCH_TENANCY_GBPS`` (default 0.3),
``BENCH_TENANCY_ROUNDS`` (default 3 timing rounds, best taken).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from _util import emit, table
from repro import Runtime, RuntimeConfig
from repro.tenancy import ReconfigureEvent, TenantRuntime, TenantSpec
from repro.traffic import CampusTrafficGenerator

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_tenancy.json"

SPEEDUP_TARGET = 2.0
CORES = 4

#: The N=8 tenant set: shared tcp/udp trie prefixes with per-tenant
#: port leaves (what the merged-trie dedup is for), two connection
#: subscriptions, and one broad udp tenant so the fan-out is not
#: uniformly selective.
TENANTS = (
    ("web", "tcp.dst_port = 443", "connection"),
    ("http", "tcp.dst_port = 80", "connection"),
    ("alt", "tcp.dst_port = 8080", "packet"),
    ("ssh", "tcp.dst_port = 22", "packet"),
    ("dns", "udp.dst_port = 53", "packet"),
    ("ntp", "udp.dst_port = 123", "packet"),
    ("rweb", "tcp.src_port = 443", "packet"),
    ("udp_all", "udp", "packet"),
)


def _duration() -> float:
    return float(os.environ.get("BENCH_TENANCY_DURATION", "0.3"))


def _gbps() -> float:
    return float(os.environ.get("BENCH_TENANCY_GBPS", "0.3"))


def _rounds() -> int:
    return int(os.environ.get("BENCH_TENANCY_ROUNDS", "3"))


def _make_traffic():
    return list(CampusTrafficGenerator(seed=42).packets(
        duration=_duration(), gbps=_gbps()))


def _reset(traffic) -> None:
    """Clear per-run scratch state so reruns over the same mbuf list
    measure the full parse cost, not a warm cache."""
    for mbuf in traffic:
        mbuf.stack = None
        mbuf.queue = None
        mbuf.pkt_term_node = None


def _specs(subset=None):
    rows = TENANTS if subset is None else TENANTS[:subset]
    return [TenantSpec(name, flt, datatype)
            for name, flt, datatype in rows]


def _shared_run(traffic, specs, events=(), **overrides):
    _reset(traffic)
    runtime = TenantRuntime(
        RuntimeConfig(cores=CORES, **overrides), specs,
        events=list(events))
    start = time.perf_counter()
    report = runtime.run(iter(traffic))
    return runtime, report, time.perf_counter() - start


def _solo_run(traffic, flt, datatype, **overrides):
    _reset(traffic)
    runtime = Runtime(
        RuntimeConfig(cores=CORES, **overrides),
        filter_str=flt, datatype=datatype, callback=None)
    start = time.perf_counter()
    report = runtime.run(iter(traffic))
    return report, time.perf_counter() - start


def _best(fn, rounds):
    elapsed = [fn() for _ in range(rounds)]
    return min(elapsed), elapsed


def run_tenancy():
    traffic = _make_traffic()
    rounds = _rounds()
    n = len(TENANTS)
    results = {
        "workload": {
            "generator": "campus",
            "seed": 42,
            "duration_s": _duration(),
            "gbps": _gbps(),
            "packets": len(traffic),
            "tenants": [{"name": name, "filter": flt,
                         "datatype": datatype}
                        for name, flt, datatype in TENANTS],
        },
        "cores": CORES,
        "speedup_target": SPEEDUP_TARGET,
    }

    # 1. shared table vs N independent evaluations --------------------
    shared_best, shared_all = _best(
        lambda: _shared_run(traffic, _specs())[2], rounds)

    def _independent_round() -> float:
        return sum(_solo_run(traffic, flt, datatype)[1]
                   for _name, flt, datatype in TENANTS)

    indep_best, indep_all = _best(_independent_round, rounds)
    results["shared"] = {
        "tenants": n,
        "rounds": rounds,
        "elapsed_s": [round(e, 4) for e in shared_all],
        "best_elapsed_s": shared_best,
        "pkts_per_sec": len(traffic) / shared_best,
    }
    results["independent"] = {
        "tenants": n,
        "rounds": rounds,
        "elapsed_s": [round(e, 4) for e in indep_all],
        "best_elapsed_s": indep_best,
        "pkts_per_sec_per_run": len(traffic) * n / indep_best,
    }
    results["speedup_vs_independent"] = indep_best / shared_best

    # 2. per-tenant equivalence (hardware plane off so a solo run sees
    # the shared link's exact ingress) ---------------------------------
    runtime, report, _ = _shared_run(traffic, _specs(),
                                     hardware_filter=False)
    shared_tenants = {
        name: stats.to_dict()
        for name, stats in runtime.aggregate_tenants(report).items()}
    equivalence = {}
    for name, flt, datatype in TENANTS:
        solo_report, _ = _solo_run(traffic, flt, datatype,
                                   hardware_filter=False)
        equivalence[name] = \
            shared_tenants[name] == solo_report.stats.to_dict()
    results["equivalence"] = equivalence

    # 3. single-tenant overhead of the multiplexer ---------------------
    name, flt, datatype = TENANTS[0]
    solo_best, _ = _best(lambda: _solo_run(traffic, flt, datatype)[1],
                         rounds)
    one_best, _ = _best(
        lambda: _shared_run(traffic, _specs(subset=1))[2], rounds)
    results["single_tenant"] = {
        "filter": flt,
        "plain_best_elapsed_s": solo_best,
        "tenant_best_elapsed_s": one_best,
        "overhead_ratio": one_best / solo_best,
    }

    # 4. live-reconfiguration overhead ---------------------------------
    # The late joiner's filter is as narrow as the dropped tenant's so
    # the overhead number measures the swap machinery, not extra load.
    mid = traffic[len(traffic) // 2].timestamp
    swap_specs = _specs() + [TenantSpec("late", "tcp.dst_port = 8443",
                                        "connection", start=False)]
    events = [ReconfigureEvent(mid, "drop", "udp_all"),
              ReconfigureEvent(mid, "add", "late")]
    swap_best, _ = _best(
        lambda: _shared_run(traffic, swap_specs, events)[2], rounds)
    swap_runtime, swap_report, _ = _shared_run(traffic, swap_specs,
                                               events)
    results["reconfigure"] = {
        "events": len(events),
        "final_epoch": swap_runtime.table.epoch,
        "best_elapsed_s": swap_best,
        "overhead_vs_static": swap_best / shared_best,
    }
    return results


def report(results) -> None:
    shared = results["shared"]
    indep = results["independent"]
    lines = [
        f"workload: campus seed=42 duration="
        f"{results['workload']['duration_s']}s "
        f"gbps={results['workload']['gbps']} "
        f"({results['workload']['packets']} packets), "
        f"{shared['tenants']} tenants on {results['cores']} cores",
        "",
        f"shared table best-of-{shared['rounds']}: "
        f"{shared['best_elapsed_s']:.3f}s "
        f"({shared['pkts_per_sec']:,.0f} pkts/s)",
        f"independent x{indep['tenants']} best-of-{indep['rounds']}: "
        f"{indep['best_elapsed_s']:.3f}s",
        f"speedup: {results['speedup_vs_independent']:.2f}x "
        f"(target >= {results['speedup_target']:.1f}x)",
        "",
        f"single-tenant multiplexer overhead: "
        f"{results['single_tenant']['overhead_ratio']:.2f}x plain",
        f"mid-run swap overhead: "
        f"{results['reconfigure']['overhead_vs_static']:.2f}x static "
        f"(final epoch {results['reconfigure']['final_epoch']})",
        "",
    ]
    lines.extend(table(
        ["tenant", "filter", "solo byte-identical"],
        [[name, flt, results["equivalence"][name]]
         for name, flt, _datatype in TENANTS]))
    emit("tenancy", lines)
    JSON_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"(json written to {JSON_PATH})")


def test_tenancy(benchmark):
    results = benchmark.pedantic(run_tenancy, rounds=1, iterations=1)
    report(results)
    # Unconditional: every tenant's shared-run stats must be the exact
    # bytes of its solo run — the shared classifier is only a fast
    # path, never a semantic change.
    for name, ok in results["equivalence"].items():
        assert ok, f"tenant {name} diverged from its solo run"
    assert results["reconfigure"]["final_epoch"] == 2
    # Timing is hardware-sensitive: asserted only when explicitly asked
    # (the committed BENCH_tenancy.json carries the measured numbers).
    if os.environ.get("BENCH_TENANCY_ASSERT_SPEEDUP") == "1":
        assert results["speedup_vs_independent"] >= SPEEDUP_TARGET


if __name__ == "__main__":
    report(run_tenancy())
