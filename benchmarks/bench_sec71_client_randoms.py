"""Section 7.1 — frequency of repeated TLS client randoms.

The paper monitors 13.4M handshakes over 10 minutes and finds that a
handful of client randoms repeat wildly: ``738b712a...dee0dbe1``
appears 8,340 times, ``417a7572...00000000`` 493 times, and the
all-zero random 309 times — broken entropy or non-compliant stacks.

We synthesize a TLS population in which a small fraction of clients
have such broken RNGs (a stuck nonce, a half-zeroed nonce, and an
all-zero nonce) and verify the subscription + counter pipeline surfaces
exactly those values at the top of the frequency table.
"""

from __future__ import annotations

import random

import pytest

from _util import emit, table
from repro import Runtime, RuntimeConfig
from repro.analysis import ClientRandomCounter
from repro.traffic import FlowSpec, tls_flow

STUCK_NONCE = bytes.fromhex("738b712a" + "ab" * 24 + "dee0dbe1")
HALF_ZERO_NONCE = bytes.fromhex("417a7572" + "cd" * 12) + bytes(16)
ALL_ZERO_NONCE = bytes(32)

N_HANDSHAKES = 1200
BROKEN_STUCK = 0.030      # fraction using the stuck nonce
BROKEN_HALF_ZERO = 0.008
BROKEN_ALL_ZERO = 0.005


def run_sec71():
    rng = random.Random(71)
    flows = []
    for i in range(N_HANDSHAKES):
        roll = rng.random()
        if roll < BROKEN_STUCK:
            client_random = STUCK_NONCE
        elif roll < BROKEN_STUCK + BROKEN_HALF_ZERO:
            client_random = HALF_ZERO_NONCE
        elif roll < BROKEN_STUCK + BROKEN_HALF_ZERO + BROKEN_ALL_ZERO:
            client_random = ALL_ZERO_NONCE
        else:
            client_random = rng.randbytes(32)
        flows.append(tls_flow(
            FlowSpec(f"10.{i % 30}.{(i // 30) % 250}.{i % 250 + 1}",
                     f"171.64.{i % 250}.7", 30000 + i % 30000, 443),
            f"host{i % 97}.example.com",
            start_ts=i * 0.002,
            client_random=client_random,
            server_random=rng.randbytes(32),
            appdata_bytes=600,
            rng=rng,
        ))
    packets = sorted((m for f in flows for m in f),
                     key=lambda m: m.timestamp)
    counter = ClientRandomCounter()
    runtime = Runtime(
        RuntimeConfig(cores=16),
        filter_str="tls",
        datatype="tls_handshake",
        callback=counter,
    )
    stats = runtime.run(iter(packets)).stats
    return counter, stats


def report(counter, stats):
    rows = []
    for value, count in counter.top(5):
        rows.append([f"{value[:4].hex()}...{value[-4:].hex()}", count])
    lines = table(["client random", "occurrences"], rows)
    lines.append("")
    lines.append(counter.summary())
    lines.append(f"zero-loss ceiling during collection: "
                 f"{stats.max_zero_loss_gbps():.1f} Gbps on 16 cores "
                 f"(paper: 157.4 Gbps average ingress, zero loss)")
    lines.append("Paper reference: top nonce 8,340x / 493x / 309x "
                 "(incl. an all-zero nonce) out of 13.4M handshakes.")
    emit("sec71_client_randoms", lines)


def test_sec71_client_randoms(benchmark):
    counter, stats = benchmark.pedantic(run_sec71, rounds=1, iterations=1)
    report(counter, stats)
    assert counter.handshakes == N_HANDSHAKES
    top = counter.top(3)
    # The three broken populations are exactly the top repeaters.
    assert {value for value, _ in top} == \
        {STUCK_NONCE, HALF_ZERO_NONCE, ALL_ZERO_NONCE}
    assert top[0][0] == STUCK_NONCE
    assert counter.all_zero_count > 0
    # Healthy clients essentially never collide.
    healthy = counter.handshakes - sum(c for _, c in top)
    assert counter.distinct >= healthy


if __name__ == "__main__":
    counter, stats = run_sec71()
    report(counter, stats)
