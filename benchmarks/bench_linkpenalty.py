"""Degraded-link penalty and recovery — what impairment costs, measured.

A campus workload is swept across link-loss severities (independent
loss and Gilbert-Elliott bursts, :mod:`repro.netem`); for each cell we
record link goodput, end-to-end analysis completeness, and a
*per-connection penalty CDF*: each connection's delivered-byte
completeness against the clean baseline run, so a 1% packet loss that
wipes out whole connections reads differently from one that shaves a
byte everywhere. A mitigation scenario (checksum quarantine +
disable-and-repair on a persistently corrupting link) adds a *recovery
CDF*: how long each disabled link stayed down before repair.

Every run writes hard numbers to ``BENCH_linkpenalty.json`` at the
repo root:

- per severity: offered/delivered packets, link goodput, connections
  delivered vs baseline, callback completeness, penalty CDF quantiles;
- the mitigation cell: quarantined/shed counts, disable cycles, and
  recovery-time quantiles;
- the conservation invariant (offered + duplicated == delivered +
  dropped) is asserted on every cell — the ledger referees.

Interpretation notes:

- Virtual-time benchmark: loss and recovery are *modeled*, so results
  are deterministic and machine-independent, like the paper-figure
  benchmarks.
- At severity 0 the impairment layer is disabled outright; that cell
  doubles as the clean baseline and must match a plain run exactly.

Env knobs: ``BENCH_LINKPENALTY_DURATION`` (virtual seconds, default
1.0), ``BENCH_LINKPENALTY_GBPS`` (default 0.05) — the CI smoke run
sets these tiny.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from _util import emit, table
from repro import Runtime, RuntimeConfig
from repro.netem import GilbertElliott, ImpairmentConfig, \
    check_impairment_accounting
from repro.traffic import CampusTrafficGenerator

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_linkpenalty.json"

SEED = 42

#: The severity sweep: (label, ImpairmentConfig or None).
SCENARIOS = (
    ("clean", None),
    ("loss-1pct", ImpairmentConfig(seed=SEED, loss_rate=0.01)),
    ("loss-5pct", ImpairmentConfig(seed=SEED, loss_rate=0.05)),
    ("burst-ge", ImpairmentConfig(
        seed=SEED, burst=GilbertElliott(p=0.01, r=0.2))),
    ("mitigated", ImpairmentConfig(
        seed=SEED, corrupt_rate=0.08, quarantine=True,
        disable_threshold=4, disable_window=128, repair_time=0.05)),
)

QUANTILES = (0.10, 0.25, 0.50, 0.75, 0.90, 0.99)


def _duration() -> float:
    return float(os.environ.get("BENCH_LINKPENALTY_DURATION", "1.0"))


def _gbps() -> float:
    return float(os.environ.get("BENCH_LINKPENALTY_GBPS", "0.05"))


def _traffic():
    return CampusTrafficGenerator(seed=SEED).packets(
        duration=_duration(), gbps=_gbps())


def _run(impairment):
    conns = {}

    def callback(record) -> None:
        conns[record.five_tuple] = record.total_bytes

    runtime = Runtime(
        RuntimeConfig(cores=2, impairment=impairment,
                      ooo_adaptive=impairment is not None),
        filter_str="tcp", datatype="connection", callback=callback,
    )
    report = runtime.run(iter(_traffic()))
    return report, conns


def _quantiles(values):
    if not values:
        return {}
    ordered = sorted(values)
    out = {}
    for q in QUANTILES:
        index = min(int(q * len(ordered)), len(ordered) - 1)
        out[f"p{int(q * 100)}"] = round(ordered[index], 6)
    out["max"] = round(ordered[-1], 6)
    return out


def _penalty_cdf(baseline, impaired):
    """Per-connection penalty: 1 - delivered-byte completeness vs the
    clean baseline (a connection the impaired run never delivered
    scores a full 1.0)."""
    penalties = []
    for tuple_, clean_bytes in baseline.items():
        got = impaired.get(tuple_, 0)
        completeness = got / clean_bytes if clean_bytes else 1.0
        penalties.append(max(0.0, 1.0 - min(completeness, 1.0)))
    return penalties


def run_linkpenalty():
    results = {
        "workload": {
            "generator": "campus",
            "seed": SEED,
            "duration_s": _duration(),
            "gbps": _gbps(),
            "datatype": "connection",
            "filter": "tcp",
        },
        "scenarios": {},
    }
    baseline_conns = None
    for label, impairment in SCENARIOS:
        report, conns = _run(impairment)
        cell = {
            "connections_delivered": len(conns),
            "ingress_packets": report.stats.ingress_packets,
        }
        if impairment is None:
            baseline_conns = conns
            cell["config"] = None
        else:
            ledger = report.impairment
            check_impairment_accounting(report)  # the referee
            penalties = _penalty_cdf(baseline_conns, conns)
            wiped = sum(1 for p in penalties if p >= 1.0)
            cell.update({
                "config": impairment.to_dict(),
                "offered": ledger.offered,
                "delivered": ledger.delivered,
                "dropped": dict(ledger.dropped),
                "corrupted": ledger.corrupted,
                "goodput_fraction": round(ledger.goodput_fraction, 6),
                "connection_completeness": round(
                    len(conns) / len(baseline_conns), 6)
                if baseline_conns else 1.0,
                "connections_wiped": wiped,
                "penalty_cdf": _quantiles(penalties),
                "mean_penalty": round(
                    sum(penalties) / len(penalties), 6)
                if penalties else 0.0,
            })
            disables = [e for e in ledger.link_events
                        if e[2] == "disable"]
            if disables:
                # Recovery time per disable cycle: disabled at ts_d,
                # re-enabled at the first admitted frame >= ts_d +
                # repair_time.
                enables = [e for e in ledger.link_events
                           if e[2] == "enable"]
                recoveries = []
                for (ts_d, port, _, _), (ts_e, _, _, _) in zip(
                        disables, enables):
                    recoveries.append(ts_e - ts_d)
                cell["disable_cycles"] = len(disables)
                cell["recovery_cdf"] = _quantiles(recoveries)
        results["scenarios"][label] = cell
    return results


def report(results) -> None:
    rows = []
    for label, cell in results["scenarios"].items():
        if cell.get("config") is None:
            rows.append([label, cell["ingress_packets"], "-", "-", "-",
                         cell["connections_delivered"], "-"])
            continue
        cdf = cell.get("penalty_cdf", {})
        rows.append([
            label,
            cell["delivered"],
            f"{cell['goodput_fraction']:.3f}",
            f"{cell.get('mean_penalty', 0.0):.4f}",
            f"{cdf.get('p99', 0.0):.3f}",
            cell["connections_delivered"],
            cell.get("disable_cycles", 0),
        ])
    workload = results["workload"]
    lines = [
        f"workload: campus seed={workload['seed']} "
        f"duration={workload['duration_s']}s gbps={workload['gbps']} "
        f"filter={workload['filter']}",
        "",
    ]
    lines.extend(table(
        ["scenario", "delivered", "goodput", "mean penalty",
         "p99 penalty", "conns", "disables"], rows))
    emit("linkpenalty", lines)
    JSON_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"(json written to {JSON_PATH})")


def test_linkpenalty(benchmark):
    results = benchmark.pedantic(run_linkpenalty, rounds=1,
                                 iterations=1)
    report(results)
    cells = results["scenarios"]
    clean = cells["clean"]
    assert clean["connections_delivered"] > 0
    # Harsher links deliver less: the sweep must be ordered.
    assert cells["loss-5pct"]["goodput_fraction"] <= \
        cells["loss-1pct"]["goodput_fraction"] <= 1.0
    # The load-dependent claims assume the default workload size; a
    # shrunken smoke run (env knobs) may not trip the mitigation.
    workload = results["workload"]
    if workload["duration_s"] >= 1.0 and workload["gbps"] >= 0.05:
        mitigated = cells["mitigated"]
        assert mitigated["dropped"]["quarantine"] > 0
        assert mitigated.get("disable_cycles", 0) >= 1
        assert "recovery_cdf" in mitigated


if __name__ == "__main__":
    report(run_linkpenalty())
