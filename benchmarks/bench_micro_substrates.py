"""Microbenchmarks of the substrates the headline results rest on.

Unlike the figure benchmarks (which measure virtual cycles), these
measure the *real* execution of the substrate data structures, and
check the qualitative properties the paper relies on:

* symmetric RSS spreads real flows evenly across queues (Section 5.1
  "the number of flows tends to be well distributed among cores");
* timer-wheel scheduling stays O(1)-ish as the table grows (Section
  5.2, citing Girondi et al.);
* the compiled packet filter executes at a healthy rate on real
  frames.
"""

from __future__ import annotations

import statistics

import pytest

from _util import emit, table
from repro.conntrack import TimerWheel
from repro.filter import compile_filter
from repro.nic import SimNic
from repro.packet import Mbuf, build_tcp_packet
from repro.traffic import CampusTrafficGenerator


@pytest.fixture(scope="module")
def campus_packets():
    return CampusTrafficGenerator(seed=61).packets(duration=0.4,
                                                   gbps=0.25)


class TestRssBalance:
    def test_rss_flow_balance(self, benchmark, campus_packets):
        """Dispatch real campus traffic across 16 queues and report the
        per-queue flow/byte balance."""
        def dispatch():
            nic = SimNic(num_queues=16)
            flows_per_queue = [set() for _ in range(16)]
            bytes_per_queue = [0] * 16
            for mbuf in campus_packets:
                queue = nic.receive(mbuf)
                if queue is None:
                    continue
                from repro.conntrack import FiveTuple
                from repro.packet import parse_stack
                tup = FiveTuple.from_stack(parse_stack(mbuf))
                if tup is not None:
                    flows_per_queue[queue].add(tup.canonical())
                bytes_per_queue[queue] += len(mbuf)
            return flows_per_queue, bytes_per_queue

        flows_per_queue, bytes_per_queue = benchmark.pedantic(
            dispatch, rounds=1, iterations=1)
        flow_counts = [len(f) for f in flows_per_queue]
        mean_flows = statistics.mean(flow_counts)
        cv_flows = statistics.pstdev(flow_counts) / mean_flows
        lines = table(
            ["queue", "flows", "MB"],
            [[i, flow_counts[i], f"{bytes_per_queue[i] / 1e6:.2f}"]
             for i in range(16)],
        )
        lines.append("")
        lines.append(f"flow-count coefficient of variation: "
                     f"{cv_flows:.3f} (lower = better balance)")
        emit("micro_rss_balance", lines)
        # Flows well distributed: every queue gets some; CV modest.
        assert min(flow_counts) > 0
        assert cv_flows < 0.5


class TestTimerWheel:
    @pytest.mark.parametrize("population", [1_000, 50_000])
    def test_schedule_advance_rate(self, benchmark, population):
        """Schedule/advance cost must not blow up with table size."""
        def workload():
            wheel = TimerWheel(tick=0.5, num_slots=64)
            for i in range(population):
                wheel.schedule(i, 5.0 + (i % 300))
            # Refresh a third of them (the hot path: conn activity).
            for i in range(0, population, 3):
                wheel.schedule(i, 400.0)
            fired = wheel.advance(1000.0)
            return len(fired)

        fired = benchmark.pedantic(workload, rounds=3, iterations=1)
        assert fired == population  # everything eventually expires


class TestCompiledFilterRate:
    def test_packet_filter_throughput(self, benchmark):
        """Real execution rate of one generated packet filter."""
        compiled = compile_filter(
            "tcp.port = 443 and ipv4.addr in 171.64.0.0/16")
        frames = [
            Mbuf(build_tcp_packet(f"10.0.{i % 200}.1", "171.64.9.9",
                                  30000 + i, 443 if i % 2 else 80))
            for i in range(2000)
        ]
        packet_filter = compiled.packet_filter

        def run_filter():
            matched = 0
            for mbuf in frames:
                if packet_filter(mbuf).matched:
                    matched += 1
            return matched

        matched = benchmark(run_filter)
        assert matched == 1000  # odd i → port 443 → match
