"""Future work (paper §9) — a P4-capable device in the filtering layer.

The paper's conclusion suggests "further optimizations to filtering,
such as including a P4-capable device in the filtering layers". A P4
pipeline can offload range and ordered comparisons that a ConnectX-5
flow table cannot (the paper's own example: ``tcp.port >= 100`` is not
offloadable), pushing more of the packet filter to zero CPU cost.

This benchmark runs the same subscription with the ConnectX-5 profile
and with a P4 profile, over traffic where the extra offloads matter,
and compares the software packet-filter load.
"""

from __future__ import annotations

import pytest

from _util import emit, table
from repro import Runtime, RuntimeConfig, Stage, Subscription
from repro.filter.hardware import connectx5_capabilities, p4_capabilities
from repro.traffic import CampusTrafficGenerator

#: Ephemeral source ports + a TTL guard: none of it fits a CX-5 flow
#: table (ranges, ordered ops), all of it fits a P4 range/ternary table.
FILTER = "tcp.port in 8000..9999 and ipv4.ttl > 32 and ipv4"


def _run(traffic, nic_caps):
    subscription = Subscription(FILTER, "connection",
                                lambda record: None, nic=nic_caps)
    runtime = Runtime(RuntimeConfig(cores=8), subscription=subscription)
    return runtime.run(iter(traffic)).stats


def run_benchmark():
    traffic = CampusTrafficGenerator(seed=94).packets(duration=0.5,
                                                      gbps=0.3)
    return {
        "connectx5": _run(traffic, connectx5_capabilities()),
        "p4": _run(traffic, p4_capabilities()),
    }


def report(results):
    rows = []
    for name, stats in results.items():
        rows.append([
            name,
            stats.ingress_packets,
            stats.hw_dropped_packets,
            stats.stage_invocations[Stage.PACKET_FILTER],
            f"{stats.cycles_per_ingress_packet:.1f}",
            f"{stats.max_zero_loss_gbps():.1f}",
            stats.conns_delivered,
        ])
    lines = table(
        ["device", "ingress", "hw dropped", "sw pkt-filter runs",
         "cycles/pkt", "zero-loss Gbps", "delivered"], rows)
    cx5, p4 = results["connectx5"], results["p4"]
    reduction = 1 - (p4.stage_invocations[Stage.PACKET_FILTER] /
                     max(cx5.stage_invocations[Stage.PACKET_FILTER], 1))
    lines.append("")
    lines.append(f"P4 pre-filtering removes "
                 f"{reduction * 100:.1f}% of the software packet-filter "
                 f"load for this subscription (identical deliveries)")
    emit("futurework_p4_prefilter", lines)
    return reduction


def test_futurework_p4_prefilter(benchmark):
    results = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    reduction = report(results)
    cx5, p4 = results["connectx5"], results["p4"]
    # Same analysis outcome.
    assert cx5.conns_delivered == p4.conns_delivered
    # The P4 device absorbs most of the packet-filter work the CX-5
    # could not express.
    assert p4.hw_dropped_packets > cx5.hw_dropped_packets
    assert reduction > 0.5
    assert p4.cycles_per_ingress_packet < cx5.cycles_per_ingress_packet


if __name__ == "__main__":
    report(run_benchmark())
