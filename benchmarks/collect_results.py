#!/usr/bin/env python
"""Assemble benchmarks/results/*.txt into one markdown report.

Run after ``pytest benchmarks/ --benchmark-only``:

    python benchmarks/collect_results.py > benchmarks/RESULTS.md
"""

from __future__ import annotations

import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Presentation order and titles.
SECTIONS = [
    ("fig5_throughput", "Figure 5 — zero-loss throughput"),
    ("fig6_ids_comparison", "Figure 6 — IDS comparison"),
    ("fig7_filter_decomposition", "Figure 7 — filter decomposition"),
    ("fig8_memory", "Figure 8 — memory over time"),
    ("fig9_video_cdf", "Figure 9 — video byte CDFs"),
    ("table2_campus_stats", "Table 2 — campus traffic statistics"),
    ("fig12_codegen_speedup", "Figure 12 — compiled vs interpreted"),
    ("fig13_packet_sizes", "Figure 13 — packet sizes"),
    ("sec71_client_randoms", "Section 7.1 — client randoms"),
    ("appxB_compile_time", "Appendix B — compilation cost"),
    ("ablation_lazy_reassembly", "Ablation — lazy reassembly"),
    ("ablation_filter_layers", "Ablation — filter layers"),
    ("futurework_p4_prefilter", "Future work — P4 pre-filter"),
    ("futurework_queued_callbacks", "Future work — queued callbacks"),
    ("micro_rss_balance", "Micro — RSS balance"),
]


def main() -> int:
    if not RESULTS_DIR.is_dir():
        print("no results directory; run the benchmarks first",
              file=sys.stderr)
        return 1
    print("# Benchmark results\n")
    print("Generated from `benchmarks/results/` — regenerate with "
          "`pytest benchmarks/ --benchmark-only`.\n")
    missing = []
    for name, title in SECTIONS:
        path = RESULTS_DIR / f"{name}.txt"
        if not path.exists():
            missing.append(name)
            continue
        print(f"## {title}\n")
        print("```")
        print(path.read_text().rstrip())
        print("```\n")
    for stray in sorted(RESULTS_DIR.glob("*.txt")):
        if stray.stem not in {name for name, _ in SECTIONS}:
            print(f"## {stray.stem}\n")
            print("```")
            print(stray.read_text().rstrip())
            print("```\n")
    if missing:
        print(f"*(not yet generated: {', '.join(missing)})*",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
