"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures and
emits its rows/series both to stdout and to
``benchmarks/results/<name>.txt`` so the numbers survive pytest's
output capture.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, List, Sequence

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, lines: Iterable[str]) -> str:
    """Print a result table and persist it under benchmarks/results/."""
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {name} ===")
    print(text)
    return text


def table(headers: Sequence[str], rows: Iterable[Sequence]) -> List[str]:
    """Format rows as a fixed-width text table."""
    rendered = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        return "  ".join(str(c).ljust(w) for c, w in zip(row, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rendered)
    return lines


def gbps(value: float, saturation: float = 100.0) -> str:
    """Render a zero-loss ceiling the way the paper interprets it:
    anything above the link rate reads as "at least 100 Gbps"."""
    if value >= saturation:
        return f"{value:7.1f} (>100: saturates link)"
    return f"{value:7.1f}"
