"""Benchmark-suite configuration."""

import sys
from pathlib import Path

# Allow `import _util` from benchmark modules regardless of rootdir.
sys.path.insert(0, str(Path(__file__).parent))
