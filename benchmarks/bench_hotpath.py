"""Hot-path proof benchmark: parse-once views + flat-buffer IPC.

This benchmark is the acceptance harness for the zero-copy batch
substrate. It measures three things on the campus ``tcp``/``connection``
workload and writes them to ``BENCH_hotpath.json`` at the repo root:

1. **Sequential throughput** (real pkts/sec, best-of-N) against the
   frozen pre-substrate baseline ``BASELINE_SEQUENTIAL_PPS`` — the
   ``sequential_4c`` number recorded by ``bench_wallclock_scaling.py``
   before the parse-once refactor landed.
2. **Cross-backend determinism**: at 1, 2, and 4 workers the parallel
   backend's AggregateStats (funnel counters included) and merged
   overload loss ledger must be *byte-identical* to the sequential
   backend's at the same core count. This is asserted unconditionally —
   it is the invariant that makes every perf change safe.
3. **IPC cost**: serialized bytes per packet for flat-buffer
   :class:`~repro.packet.batch.PackedBatch` dispatch vs per-object mbuf
   pickling, plus the live ``ipc_bytes_per_packet`` reading from a real
   parallel run's backend-health telemetry.

A cProfile pass over one sequential run records where the remaining
cycles go (top functions by cumulative time), so future perf PRs start
from a measured profile instead of a guess.

Timing assertions are environment-sensitive, so they are gated behind
``BENCH_HOTPATH_ASSERT_SPEEDUP=1``; CI runs this benchmark for the
determinism and IPC-ratio checks only. Env knobs:
``BENCH_HOTPATH_DURATION`` (default 0.3 virtual seconds),
``BENCH_HOTPATH_GBPS`` (default 0.3), ``BENCH_HOTPATH_ROUNDS``
(default 3 timing rounds, best taken).
"""

from __future__ import annotations

import cProfile
import io
import json
import os
import pickle
import pstats
import time
from pathlib import Path

from _util import emit, table
from repro import Runtime, RuntimeConfig
from repro.packet.batch import PackedBatch
from repro.traffic import CampusTrafficGenerator

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_hotpath.json"

#: Sequential 4-core pkts/sec of the seed runtime (BENCH_wallclock.json
#: ``sequential_4c`` before the parse-once substrate), measured on the
#: same campus seed=42 workload this benchmark replays. The tentpole
#: target is >= 2x this number on comparable hardware.
BASELINE_SEQUENTIAL_PPS = 22249.87
SPEEDUP_TARGET = 2.0
#: Flat-buffer IPC must serialize at least this many times fewer bytes
#: per packet than pickling the mbuf objects individually per batch.
IPC_RATIO_TARGET = 4.0
#: The shared-memory ring transport must cross at least this many times
#: fewer serialized bytes per packet than the pickled-queue transport
#: (descriptor words vs whole flat buffers — ISSUE 10's acceptance
#: floor; the measured ratio is orders of magnitude higher).
SHM_OVERHEAD_RATIO_TARGET = 3.0

FILTER = "tcp"
DATATYPE = "connection"
WORKER_COUNTS = (1, 2, 4)


def _duration() -> float:
    return float(os.environ.get("BENCH_HOTPATH_DURATION", "0.3"))


def _gbps() -> float:
    return float(os.environ.get("BENCH_HOTPATH_GBPS", "0.3"))


def _rounds() -> int:
    return int(os.environ.get("BENCH_HOTPATH_ROUNDS", "3"))


def _columnar() -> bool:
    """``--columnar``/``--no-columnar`` (env ``BENCH_HOTPATH_COLUMNAR``,
    default on). With columnar on, the scalar number is still measured
    and recorded side by side."""
    return os.environ.get("BENCH_HOTPATH_COLUMNAR", "1") != "0"


def _make_traffic():
    return list(CampusTrafficGenerator(seed=42).packets(
        duration=_duration(), gbps=_gbps()))


def _reset(traffic) -> None:
    """Clear per-run scratch state so reruns over the same mbuf list
    measure the full parse cost, not a warm cache."""
    for mbuf in traffic:
        mbuf.stack = None
        mbuf.queue = None
        mbuf.pkt_term_node = None


def _runtime(cores: int, parallel: bool, **overrides) -> Runtime:
    return Runtime(
        RuntimeConfig(cores=cores, parallel=parallel, **overrides),
        filter_str=FILTER,
        datatype=DATATYPE,
        callback=None,
    )


def _run(traffic, cores: int, parallel: bool, **overrides):
    _reset(traffic)
    runtime = _runtime(cores, parallel, **overrides)
    start = time.perf_counter()
    report = runtime.run(iter(traffic))
    return report, time.perf_counter() - start


def _canonical(report) -> str:
    """The run's deterministic outputs as one canonical JSON string.

    Covers every AggregateStats counter (the filter-funnel layers are
    ``pf_*``/``connf_*``/``sessf_*`` plus stage cycles) and the merged
    overload loss ledger; byte equality of this string is the
    cross-backend guarantee.
    """
    payload = {
        "stats": report.stats.to_dict(),
        "overload": report.overload.to_dict()
        if report.overload is not None else None,
    }
    return json.dumps(payload, sort_keys=True)


def _profile_sequential(traffic, top: int = 12):
    """cProfile one sequential run; return (top-rows, text)."""
    _reset(traffic)
    runtime = _runtime(4, parallel=False)
    profiler = cProfile.Profile()
    profiler.enable()
    runtime.run(iter(traffic))
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(top)
    rows = []
    for func, (cc, nc, tt, ct, _callers) in stats.stats.items():
        filename, line, name = func
        rows.append({
            "function": f"{os.path.basename(filename)}:{line}({name})",
            "ncalls": nc,
            "tottime_s": round(tt, 4),
            "cumtime_s": round(ct, 4),
        })
    rows.sort(key=lambda r: r["tottime_s"], reverse=True)
    return rows[:top], stream.getvalue()


def _measure_ipc(traffic, batch_size: int):
    """Serialized bytes per packet: flat buffers vs object pickling.

    The raw frame bytes must cross the process boundary under *any*
    transport, so the quantity the flat-buffer encoding attacks is the
    **serialization overhead** — bytes beyond the frames themselves.
    ``per_object`` pickles every mbuf standalone (the literal
    O(objects) feeder); ``object_batch`` pickles the mbuf list per
    batch (the pre-substrate dispatch); ``flat_buffer`` is the
    PackedBatch wire format. The headline ``reduction_ratio`` is
    per-object overhead over flat-buffer overhead.
    """
    frame_bytes = object_bytes = batch_bytes = flat_bytes = 0
    packets = len(traffic)
    for mbuf in traffic:
        frame_bytes += len(mbuf.data)
        object_bytes += len(pickle.dumps(mbuf))
    for start in range(0, packets, batch_size):
        chunk = traffic[start:start + batch_size]
        batch_bytes += len(pickle.dumps(chunk))
        flat_bytes += len(pickle.dumps(PackedBatch.pack(chunk, 0)))
    frame_pp = frame_bytes / packets
    return {
        "packets": packets,
        "batch_size": batch_size,
        "frame_bytes_per_packet": frame_pp,
        "per_object_bytes_per_packet": object_bytes / packets,
        "per_object_overhead_per_packet":
            (object_bytes - frame_bytes) / packets,
        "object_batch_bytes_per_packet": batch_bytes / packets,
        "object_batch_overhead_per_packet":
            (batch_bytes - frame_bytes) / packets,
        "flat_buffer_bytes_per_packet": flat_bytes / packets,
        "flat_buffer_overhead_per_packet":
            (flat_bytes - frame_bytes) / packets,
        "reduction_ratio":
            (object_bytes - frame_bytes) / (flat_bytes - frame_bytes),
    }


def run_hotpath():
    traffic = _make_traffic()
    cpu_count = len(os.sched_getaffinity(0)) \
        if hasattr(os, "sched_getaffinity") else os.cpu_count()
    results = {
        "workload": {
            "generator": "campus",
            "seed": 42,
            "duration_s": _duration(),
            "gbps": _gbps(),
            "packets": len(traffic),
            "filter": FILTER,
            "datatype": DATATYPE,
        },
        "cpu_count": cpu_count,
        "baseline_sequential_pps": BASELINE_SEQUENTIAL_PPS,
    }

    # 1. sequential throughput, best of N rounds — columnar and scalar
    # side by side (the scalar run is the same code with the columnar
    # hot path disabled, i.e. the pre-columnar data path).
    use_columnar = _columnar()

    def _time_sequential(columnar: bool) -> dict:
        elapsed = []
        for _ in range(_rounds()):
            _report, took = _run(traffic, cores=4, parallel=False,
                                 columnar=columnar)
            elapsed.append(took)
        best = min(elapsed)
        pps = len(traffic) / best
        return {
            "columnar": columnar,
            "rounds": len(elapsed),
            "elapsed_s": [round(e, 4) for e in elapsed],
            "best_elapsed_s": best,
            "pkts_per_sec": pps,
            "speedup_vs_baseline": pps / BASELINE_SEQUENTIAL_PPS,
        }

    results["sequential"] = _time_sequential(use_columnar)
    if use_columnar:
        results["sequential_scalar"] = _time_sequential(False)
        results["sequential"]["speedup_vs_scalar"] = (
            results["sequential"]["pkts_per_sec"]
            / results["sequential_scalar"]["pkts_per_sec"])

    # 1b. span-tracing overhead: the same sequential run with the burst
    # span recorder, flight ring, and profiler fully on (every burst
    # sampled). The headline number the perf gate checks is the
    # *spans-disabled* throughput above — span recording must be a
    # no-op when off — and the enabled overhead is recorded here so
    # regressions in the recorder itself are visible in the JSON.
    spans_elapsed = []
    for _ in range(_rounds()):
        _report, took = _run(traffic, cores=4, parallel=False,
                             columnar=use_columnar, span_sample=1,
                             flight_recorder_depth=8)
        spans_elapsed.append(took)
    spans_best = min(spans_elapsed)
    spans_pps = len(traffic) / spans_best
    results["sequential_spans"] = {
        "columnar": use_columnar,
        "span_sample": 1,
        "flight_recorder_depth": 8,
        "rounds": len(spans_elapsed),
        "elapsed_s": [round(e, 4) for e in spans_elapsed],
        "best_elapsed_s": spans_best,
        "pkts_per_sec": spans_pps,
        "overhead_vs_disabled":
            results["sequential"]["pkts_per_sec"] / spans_pps,
    }

    # 2. profiled hot path (one extra sequential run under cProfile)
    top_rows, profile_text = _profile_sequential(traffic)
    results["profile_top"] = top_rows
    results["_profile_text"] = profile_text

    # 3. cross-backend byte-identical outputs at 1/2/4 workers. The
    # overload ladder is enabled so the run produces a loss ledger to
    # compare (it stays at rung 0 on this load; the ledger is still
    # merged and exported).
    # The sequential side runs with columnar *disabled* while the
    # parallel side uses the toggle, so with columnar on this check
    # doubles as the columnar-vs-scalar end-to-end parity gate.
    determinism = {}
    for workers in WORKER_COUNTS:
        seq_report, _ = _run(traffic, cores=workers, parallel=False,
                             overload_policy="ladder", columnar=False)
        par_report, _ = _run(traffic, cores=workers, parallel=True,
                             overload_policy="ladder",
                             columnar=use_columnar)
        seq_blob = _canonical(seq_report)
        par_blob = _canonical(par_report)
        determinism[f"{workers}w"] = {
            "stats_bytes": len(seq_blob),
            "byte_identical": seq_blob == par_blob,
            "columnar_vs_scalar": use_columnar,
        }
    results["determinism"] = determinism

    # 4. IPC bytes per packet: measured serialization + live telemetry
    batch_size = RuntimeConfig().parallel_batch_size
    ipc = _measure_ipc(traffic, batch_size)
    live_report, _ = _run(traffic, cores=4, parallel=True,
                          telemetry=True)
    health = live_report.backend_health or {}
    ipc["live_ipc_bytes_per_packet"] = \
        health.get("ipc_bytes_per_packet", 0.0)
    results["ipc"] = ipc

    # 5. transport comparison: pickled queues vs shared-memory rings,
    # side by side on the same 4-worker run. Adaptive batch sizing is
    # off so the shm ipc_bytes_per_packet reading (8 B descriptor per
    # batch) is a deterministic function of the batch count.
    from repro.core import shm as shm_mod

    transports = {}
    blobs = {}
    for ipc_mode in ("queue", "shm"):
        if ipc_mode == "shm" and not shm_mod.shm_available():
            continue
        rep, took = _run(traffic, cores=4, parallel=True,
                         telemetry=True, ipc_transport=ipc_mode,
                         ipc_adaptive_batch=False)
        h = rep.backend_health or {}
        blobs[ipc_mode] = _canonical(rep)
        entry = {
            "elapsed_s": round(took, 4),
            "pkts_per_sec": len(traffic) / took,
            "ipc_bytes_per_packet": h.get("ipc_bytes_per_packet", 0.0),
            "feeder_block_seconds": h.get("feeder_block_seconds", 0.0),
        }
        if ipc_mode == "shm":
            entry["ring_highwater"] = h.get("ring_highwater", 0)
            entry["slot_starvation_waits"] = \
                h.get("slot_starvation_waits", 0)
        transports[ipc_mode] = entry
    if "shm" in transports:
        shm_bpp = transports["shm"]["ipc_bytes_per_packet"]
        queue_bpp = transports["queue"]["ipc_bytes_per_packet"]
        transports["serialization_overhead_ratio"] = \
            queue_bpp / shm_bpp if shm_bpp else float("inf")
        transports["byte_identical"] = blobs["queue"] == blobs["shm"]
        transports["shm_speedup_vs_queue"] = (
            transports["queue"]["elapsed_s"]
            / transports["shm"]["elapsed_s"])
    results["transport"] = transports
    return results


def report(results) -> None:
    seq = results["sequential"]
    ipc = results["ipc"]
    lines = [
        f"workload: campus seed=42 duration="
        f"{results['workload']['duration_s']}s "
        f"gbps={results['workload']['gbps']} "
        f"({results['workload']['packets']} packets), "
        f"filter={FILTER!r} datatype={DATATYPE!r}",
        f"machine: {results['cpu_count']} CPU(s) available",
        "",
        f"sequential best-of-{seq['rounds']} "
        f"({'columnar' if seq['columnar'] else 'scalar'}): "
        f"{seq['pkts_per_sec']:,.0f} pkts/s "
        f"({seq['speedup_vs_baseline']:.2f}x the "
        f"{results['baseline_sequential_pps']:,.0f} pkts/s baseline)",
    ]
    scalar = results.get("sequential_scalar")
    if scalar is not None:
        lines.append(
            f"sequential best-of-{scalar['rounds']} (scalar): "
            f"{scalar['pkts_per_sec']:,.0f} pkts/s — columnar is "
            f"{seq['speedup_vs_scalar']:.2f}x scalar")
    spans = results.get("sequential_spans")
    if spans is not None:
        lines.append(
            f"sequential best-of-{spans['rounds']} (spans on, K=1, "
            f"ring=8): {spans['pkts_per_sec']:,.0f} pkts/s — "
            f"{spans['overhead_vs_disabled']:.2f}x the disabled cost")
    lines += [
        "",
        f"IPC (batch={ipc['batch_size']}, frames "
        f"{ipc['frame_bytes_per_packet']:.1f} B/pkt): serialization "
        f"overhead {ipc['flat_buffer_overhead_per_packet']:.1f} B/pkt "
        f"flat-buffer vs "
        f"{ipc['per_object_overhead_per_packet']:.1f} B/pkt per-object "
        f"pickling — {ipc['reduction_ratio']:.2f}x less "
        f"(batched object lists: "
        f"{ipc['object_batch_overhead_per_packet']:.1f} B/pkt; "
        f"live run total: "
        f"{ipc['live_ipc_bytes_per_packet']:.1f} B/pkt)",
        "",
    ]
    transport = results.get("transport", {})
    if "shm" in transport:
        lines += [
            f"transport (4 workers, adaptive off): shm "
            f"{transport['shm']['ipc_bytes_per_packet']:.3f} B/pkt "
            f"serialized vs queue "
            f"{transport['queue']['ipc_bytes_per_packet']:.1f} B/pkt — "
            f"{transport['serialization_overhead_ratio']:.0f}x less; "
            f"wallclock {transport['shm_speedup_vs_queue']:.2f}x queue; "
            f"byte-identical: "
            f"{'yes' if transport['byte_identical'] else 'NO'}",
            "",
        ]
    det_rows = [[name, "yes" if entry["byte_identical"] else "NO",
                 entry["stats_bytes"]]
                for name, entry in results["determinism"].items()]
    lines.extend(table(
        ["workers", "byte-identical vs sequential", "stats bytes"],
        det_rows))
    lines.append("")
    prof_rows = [[row["function"], row["ncalls"],
                  f"{row['tottime_s']:.3f}", f"{row['cumtime_s']:.3f}"]
                 for row in results["profile_top"]]
    lines.extend(table(
        ["hot function (by tottime)", "calls", "tottime", "cumtime"],
        prof_rows))
    emit("hotpath", lines)
    serializable = {k: v for k, v in results.items()
                    if not k.startswith("_")}
    JSON_PATH.write_text(json.dumps(serializable, indent=2) + "\n")
    print(f"(json written to {JSON_PATH})")


def test_hotpath(benchmark):
    results = benchmark.pedantic(run_hotpath, rounds=1, iterations=1)
    report(results)
    # Unconditional: the determinism guarantee. A byte-level mismatch
    # between backends at any worker count is a correctness bug.
    for name, entry in results["determinism"].items():
        assert entry["byte_identical"], \
            f"parallel backend diverged from sequential at {name}"
    # Unconditional: the flat-buffer encoding itself is deterministic,
    # so the serialization ratio holds on any machine.
    assert results["ipc"]["reduction_ratio"] >= IPC_RATIO_TARGET
    # Unconditional where shm exists: ring descriptors vs pickled flat
    # buffers is a deterministic byte count, and the transports must
    # agree byte-for-byte on the run's outputs.
    transport = results.get("transport", {})
    if "shm" in transport:
        assert transport["byte_identical"], \
            "shm and queue transports produced different stats"
        assert transport["serialization_overhead_ratio"] \
            >= SHM_OVERHEAD_RATIO_TARGET
    # Timing is hardware-sensitive: asserted only when explicitly asked
    # (the committed BENCH_hotpath.json carries the measured numbers).
    if os.environ.get("BENCH_HOTPATH_ASSERT_SPEEDUP") == "1":
        assert results["sequential"]["speedup_vs_baseline"] \
            >= SPEEDUP_TARGET


if __name__ == "__main__":
    import sys

    if "--no-columnar" in sys.argv:
        os.environ["BENCH_HOTPATH_COLUMNAR"] = "0"
    elif "--columnar" in sys.argv:
        os.environ["BENCH_HOTPATH_COLUMNAR"] = "1"
    report(run_hotpath())
