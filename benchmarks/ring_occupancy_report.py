"""Ring-occupancy report for the shm transport (CI artifact).

Runs the campus workload through the shared-memory ring transport at a
few worker counts and ring depths and records, per worker: descriptor-
ring occupancy high-water, slot-starvation waits and blocked seconds,
slot bytes written, and the run-level ``ipc_bytes_per_packet``. The
point of the artifact is trend visibility — a PR that suddenly pins
rings at their high-water or starts starving slots shows up in the CI
archive before it shows up as a throughput regression.

Writes ``benchmarks/results/ring_occupancy.json``. Exits non-zero only
when the transport misbehaves functionally (stats diverge from the
queue transport on the same workload); occupancy numbers themselves are
scheduling-dependent and never gate.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

from repro import Runtime, RuntimeConfig
from repro.core import shm
from repro.traffic import CampusTrafficGenerator

OUT_PATH = Path(__file__).resolve().parent / "results" / \
    "ring_occupancy.json"

SCENARIOS = (
    # (label, workers, ring depth, batch size)
    ("baseline_2w", 2, 8, 256),
    ("baseline_4w", 4, 8, 256),
    ("tiny_ring_4w", 4, 2, 64),
    ("deep_ring_4w", 4, 32, 256),
)


def _traffic():
    duration = float(os.environ.get("RING_REPORT_DURATION", "0.3"))
    gbps = float(os.environ.get("RING_REPORT_GBPS", "0.3"))
    return list(CampusTrafficGenerator(seed=42).packets(
        duration=duration, gbps=gbps)), duration, gbps


def _run(traffic, workers, depth, batch, ipc):
    config = RuntimeConfig(cores=workers, parallel=True, telemetry=True,
                           ipc_transport=ipc, parallel_queue_depth=depth,
                           parallel_batch_size=batch)
    runtime = Runtime(config, filter_str="tcp", datatype="connection",
                      callback=None)
    return runtime.run(iter(traffic))


def main() -> int:
    if not shm.shm_available():
        print("shared_memory unavailable; nothing to report")
        OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
        OUT_PATH.write_text(json.dumps(
            {"shm_available": False}, indent=2) + "\n")
        return 0
    traffic, duration, gbps = _traffic()
    report = {
        "shm_available": True,
        "workload": {"generator": "campus", "seed": 42,
                     "duration_s": duration, "gbps": gbps,
                     "packets": len(traffic)},
        "scenarios": {},
    }
    failures = 0
    for label, workers, depth, batch in SCENARIOS:
        via_shm = _run(traffic, workers, depth, batch, "shm")
        via_queue = _run(traffic, workers, depth, batch, "queue")
        identical = via_shm.stats.to_dict() == via_queue.stats.to_dict()
        if not identical:
            failures += 1
        health = via_shm.backend_health or {}
        report["scenarios"][label] = {
            "workers": workers,
            "ring_size": health.get("ring_size", depth),
            "slot_bytes": health.get("slot_bytes"),
            "batch_size": batch,
            "stats_match_queue_transport": identical,
            "ipc_bytes_per_packet":
                health.get("ipc_bytes_per_packet", 0.0),
            "ring_highwater": health.get("ring_highwater", 0),
            "slot_starvation_waits":
                health.get("slot_starvation_waits", 0),
            "slot_starvation_seconds":
                health.get("slot_starvation_seconds", 0.0),
            "feeder_block_seconds":
                health.get("feeder_block_seconds", 0.0),
            "workers_detail": [
                {k: row.get(k, 0) for k in (
                    "worker", "batches", "packets", "ring_highwater",
                    "slot_starvation_waits", "slot_bytes_written")}
                for row in health.get("workers", ())
            ],
        }
        starv = report["scenarios"][label]["slot_starvation_waits"]
        print(f"{label}: ring_highwater="
              f"{report['scenarios'][label]['ring_highwater']}/"
              f"{report['scenarios'][label]['ring_size']} "
              f"starvation_waits={starv} "
              f"ipc="
              f"{report['scenarios'][label]['ipc_bytes_per_packet']:.3f}"
              f" B/pkt match={'yes' if identical else 'NO'}")
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"(json written to {OUT_PATH})")
    if failures:
        print(f"RING REPORT FAILED: {failures} scenario(s) diverged "
              f"from the queue transport", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
