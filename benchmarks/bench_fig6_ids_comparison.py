"""Figure 6 — comparison with optimized network monitors.

The paper drives Retina, Suricata+DPDK, Snort+DPDK, and
Zeek+AF_PACKET with closed-loop 256 KB HTTPS requests at swept rates,
all on a single core, all performing the same task (log connections
matching the TLS server name), all hardware offloads disabled.

Each system's capacity is measured by running its real pipeline over
the generated workload once; the processed-bytes-vs-offered-rate curve
is then capacity-capped, exactly as a saturating single core behaves.
Dashed regions (loss > 1%) are marked with ``*``.

Expected shape (paper): Retina ~49 Gbps zero-loss; Suricata less than
half of Retina, dropping above ~10 Gbps; Zeek ~4-5 Gbps; Snort
~0.4-1 Gbps — i.e. Retina sustains 5-100x higher rates.
"""

from __future__ import annotations

import pytest

from _util import emit, table
from repro import Runtime, RuntimeConfig
from repro.baselines import (
    SnortLikeAnalyzer,
    SuricataLikeAnalyzer,
    ZeekLikeAnalyzer,
)
from repro.traffic import HttpsWorkloadGenerator

RATES_KREQ = (1, 2, 5, 10, 15, 20, 25, 30)
SNI_PATTERN = "nginx"


def run_figure6():
    generator = HttpsWorkloadGenerator(seed=6, response_bytes=256 * 1024)
    workload = generator.packets(requests_per_second=60, duration=0.5)
    bytes_per_request = generator.bytes_per_request()

    capacities = {}
    for cls in (SuricataLikeAnalyzer, ZeekLikeAnalyzer, SnortLikeAnalyzer):
        analyzer = cls(sni_pattern=SNI_PATTERN)
        report = analyzer.analyze(iter(workload))
        capacities[report.name] = report.max_zero_loss_gbps(cores=1)

    runtime = Runtime(
        RuntimeConfig(cores=1, hardware_filter=False,
                      callback_cycles=12_000),  # logging a record
        filter_str=f"tls.sni ~ '{SNI_PATTERN}'",
        datatype="connection",
        callback=lambda record: None,
    )
    retina_stats = runtime.run(iter(workload)).stats
    capacities["retina"] = retina_stats.max_zero_loss_gbps(1)
    return capacities, bytes_per_request


def report(capacities, bytes_per_request):
    systems = ("retina", "suricata", "zeek", "snort")
    rows = []
    for kreq in RATES_KREQ:
        offered = kreq * 1000 * bytes_per_request * 8 / 1e9
        row = [kreq, f"{offered:6.1f}"]
        for name in systems:
            cap = capacities[name]
            processed = min(offered, cap)
            loss = 0.0 if offered <= cap else 1 - cap / offered
            marker = "*" if loss > 0.01 else " "
            row.append(f"{processed:6.2f}{marker}")
        rows.append(row)
    lines = table(
        ["kreq/s", "offered Gbps"] + [f"{s} Gbps" for s in systems], rows)
    lines.append("")
    lines.append("(* = packet loss above 1%, the paper's dashed region)")
    lines.append("single-core zero-loss capacity: " + ", ".join(
        f"{name}={capacities[name]:.2f} Gbps" for name in systems))
    ratios = {name: capacities["retina"] / capacities[name]
              for name in systems if name != "retina"}
    lines.append("retina advantage: " + ", ".join(
        f"{k}: {v:.1f}x" for k, v in ratios.items()))
    lines.append("Paper reference: Retina ~49 Gbps, Suricata ~10, "
                 "Zeek ~4-5, Snort ~0.4-1 (5-100x).")
    emit("fig6_ids_comparison", lines)


def test_fig6_ids_comparison(benchmark):
    capacities, bpr = benchmark.pedantic(run_figure6, rounds=1,
                                         iterations=1)
    report(capacities, bpr)
    assert capacities["retina"] > capacities["suricata"] \
        > capacities["zeek"] > capacities["snort"]
    # The headline claim: 5-100x higher sustainable rates.
    assert capacities["retina"] / capacities["suricata"] >= 4
    assert capacities["retina"] / capacities["snort"] >= 50
    # Absolute bands (ours is a model; stay within ~2x of the paper).
    assert 25 < capacities["retina"] < 110
    assert 5 < capacities["suricata"] < 20
    assert 2 < capacities["zeek"] < 9
    assert 0.2 < capacities["snort"] < 1.5


if __name__ == "__main__":
    capacities, bpr = run_figure6()
    report(capacities, bpr)
