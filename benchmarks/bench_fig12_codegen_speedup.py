"""Figure 12 / Appendix B — speedup from compiled filter code.

The paper replays four Stratosphere "normal user" traces in offline
mode on one core (no hardware filtering), logging TLS handshakes, and
compares natively generated filter code against runtime-interpreted
filters across filters of increasing complexity. Measured speedups
range 5.4%-300.4%, growing with filter complexity.

This is the one benchmark where the *real* execution time of this
Python implementation is the measurement (both backends do identical
semantic work; only the execution strategy differs — exactly the
paper's variable), so it uses wall-clock timing rather than the
virtual cycle ledger.
"""

from __future__ import annotations

import time

import pytest

from _util import emit, table
from repro import Runtime, RuntimeConfig
from repro.traffic import stratosphere_trace
from repro.traffic.strato import trace_names

NETFLIX_32 = (
    "ipv4.addr in 23.246.0.0/18 or ipv4.addr in 37.77.184.0/21 or "
    "ipv4.addr in 45.57.0.0/17 or ipv4.addr in 64.120.128.0/17 or "
    "ipv4.addr in 66.197.128.0/17 or ipv4.addr in 108.175.32.0/20 or "
    "ipv4.addr in 185.2.220.0/22 or ipv4.addr in 185.9.188.0/22 or "
    "ipv4.addr in 192.173.64.0/18 or ipv4.addr in 198.38.96.0/19 or "
    "ipv4.addr in 198.45.48.0/20 or ipv4.addr in 208.75.79.0/24 or "
    "ipv6.addr in 2620:10c:7000::/44 or ipv6.addr in 2a00:86c0::/32 or "
    "tls.sni ~ 'netflix.com' or tls.sni ~ 'nflxvideo.net' or "
    "tls.sni ~ 'nflximg.net' or tls.sni ~ 'nflxext.com' or "
    "tls.sni ~ 'nflximg.com' or tls.sni ~ 'nflxso.net'"
)

FILTERS = [
    ("None", ""),
    ("ipv4", "ipv4"),
    ("tcp.port = 443", "tcp.port = 443"),
    ("tls.cipher ~ AES_128_GCM", "tls.cipher ~ 'AES_128_GCM'"),
    ("Netflix traffic (32 preds)", NETFLIX_32),
]


def _time_run(trace, filter_str, mode):
    """Best-of-three CPU-time measurement.

    ``process_time`` (not wall clock) so a contended machine does not
    drown the signal, with the garbage collector paused during the
    measured region.
    """
    import gc

    best = float("inf")
    for _ in range(3):
        runtime = Runtime(
            RuntimeConfig(cores=1, hardware_filter=False,
                          filter_mode=mode),
            filter_str=filter_str,
            datatype="tls_handshake",
            callback=lambda hs: None,
        )
        gc.collect()
        gc.disable()
        try:
            start = time.process_time()
            runtime.run(iter(trace))
            best = min(best, time.process_time() - start)
        finally:
            gc.enable()
    return best


def run_figure12():
    traces = {name: stratosphere_trace(name, duration=8.0)
              for name in trace_names()}
    speedups = {}
    for trace_name, trace in traces.items():
        for label, filter_str in FILTERS:
            compiled = _time_run(trace, filter_str, "codegen")
            interpreted = _time_run(trace, filter_str, "interp")
            speedups[(trace_name, label)] = interpreted / compiled
    return speedups


def report(speedups):
    rows = []
    for trace_name in trace_names():
        rows.append([trace_name.replace("CTU-Normal-", "norm-")] + [
            f"{speedups[(trace_name, label)]:.2f}x"
            for label, _ in FILTERS
        ])
    lines = table(["trace"] + [label for label, _ in FILTERS], rows)
    lines.append("")
    lines.append("speedup = interpreted runtime / compiled runtime "
                 "(same semantics, different execution strategy)")
    lines.append("Paper reference: 5.4%-300.4% speedups, larger for "
                 "complex filters (the 32-predicate Netflix filter "
                 "exceeds 3x).")
    emit("fig12_codegen_speedup", lines)


def test_fig12_codegen_speedup(benchmark):
    speedups = benchmark.pedantic(run_figure12, rounds=1, iterations=1)
    report(speedups)
    complex_label = FILTERS[-1][0]
    simple_label = FILTERS[1][0]
    complex_speedups = [speedups[(t, complex_label)]
                        for t in trace_names()]
    simple_speedups = [speedups[(t, simple_label)] for t in trace_names()]
    # Compiled filters win on the complex filter (mean over traces —
    # individual cells carry measurement noise).
    assert sum(complex_speedups) / 4 > 1.15
    assert sum(complex_speedups) / 4 > sum(simple_speedups) / 4
    # The 32-predicate filter shows a substantial gap somewhere.
    assert max(complex_speedups) > 1.3


if __name__ == "__main__":
    report(run_figure12())
