"""Wall-clock scaling — real packets/sec of the parallel backend.

Unlike the paper-figure benchmarks (which reproduce Retina's *virtual*
cycle arithmetic), this one measures **real elapsed time**: the same
campus workload is pushed through the sequential backend and through
the parallel backend at 1/2/4/8 worker processes, and the speedups are
recorded. This seeds the perf trajectory for future scaling PRs —
every run appends hard numbers to ``BENCH_wallclock.json`` at the repo
root.

Interpretation notes:

- Traffic is materialized *before* timing so the generator's cost is
  excluded — the number is the runtime's throughput, not the
  synthesizer's.
- Wall-clock speedup requires actual CPUs. On a machine with fewer
  cores than workers, the parallel backend can only demonstrate its
  overhead (sharding + batched IPC), not its scaling; the JSON records
  ``cpu_count`` so readers can tell which regime a result came from,
  and the speedup acceptance assertion applies only when >= 4 CPUs
  are available.
- Counters must match between backends in every regime — that part is
  asserted unconditionally.

Env knobs: ``BENCH_WALLCLOCK_DURATION`` (virtual seconds of traffic,
default 0.5), ``BENCH_WALLCLOCK_GBPS`` (default 0.5) — the CI smoke
run sets these tiny.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from _util import emit, table
from repro import Runtime, RuntimeConfig
from repro.traffic import CampusTrafficGenerator

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_wallclock.json"

WORKERS = (1, 2, 4, 8)
FILTER = "tcp"
DATATYPE = "connection"


def _duration() -> float:
    return float(os.environ.get("BENCH_WALLCLOCK_DURATION", "0.5"))


def _gbps() -> float:
    return float(os.environ.get("BENCH_WALLCLOCK_GBPS", "0.5"))


def _timed_run(traffic, cores: int, parallel: bool, ipc: str = "auto"):
    runtime = Runtime(
        RuntimeConfig(cores=cores, parallel=parallel,
                      ipc_transport=ipc),
        filter_str=FILTER,
        datatype=DATATYPE,
        callback=None,
    )
    start = time.perf_counter()
    report = runtime.run(iter(traffic))
    elapsed = time.perf_counter() - start
    return report.stats, elapsed


def run_wallclock_scaling():
    traffic = list(CampusTrafficGenerator(seed=42).packets(
        duration=_duration(), gbps=_gbps()))
    results = {
        "workload": {
            "generator": "campus",
            "seed": 42,
            "duration_s": _duration(),
            "gbps": _gbps(),
            "packets": len(traffic),
            "filter": FILTER,
            "datatype": DATATYPE,
        },
        "cpu_count": len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity") else os.cpu_count(),
        "runs": {},
    }

    cpu_count = results["cpu_count"]
    seq_stats, seq_elapsed = _timed_run(traffic, cores=4, parallel=False)
    results["runs"]["sequential_4c"] = {
        "workers": 1,
        "cpu_count": cpu_count,
        "elapsed_s": seq_elapsed,
        "pkts_per_sec": len(traffic) / seq_elapsed,
    }

    # Queue vs shm side by side: the headline ``parallel_{N}w`` entries
    # use the shm ring transport (the default wherever it exists); the
    # ``_queue`` twins measure the pickled-queue path it replaced, so
    # the JSON records the transport win per worker count.
    from repro.core import shm as shm_mod

    if shm_mod.shm_available():
        transports = [("shm", ""), ("queue", "_queue")]
    else:  # headline entries fall back to the only transport there is
        transports = [("queue", "")]

    seq_counters = seq_stats.to_dict()
    for workers in WORKERS:
        for ipc, suffix in transports:
            par_stats, par_elapsed = _timed_run(
                traffic, cores=workers, parallel=True, ipc=ipc)
            entry = {
                "workers": workers,
                "ipc_transport": ipc,
                "cpu_count": cpu_count,
                "elapsed_s": par_elapsed,
                "pkts_per_sec": len(traffic) / par_elapsed,
                "speedup_vs_sequential": seq_elapsed / par_elapsed,
                # A speedup claim is only meaningful when every worker
                # can own a physical CPU; oversubscribed runs measure
                # scheduler contention, not scaling.
                "speedup_valid": workers <= cpu_count,
            }
            if workers == 4:
                # The determinism guarantee on the headline config —
                # per transport.
                entry["counters_match_sequential"] = \
                    par_stats.to_dict() == seq_counters
            results["runs"][f"parallel_{workers}w{suffix}"] = entry
        if len(transports) == 2:
            shm_run = results["runs"][f"parallel_{workers}w"]
            queue_run = results["runs"][f"parallel_{workers}w_queue"]
            shm_run["speedup_vs_queue"] = (
                queue_run["elapsed_s"] / shm_run["elapsed_s"])
    return results


def report(results) -> None:
    rows = []
    for name, run in results["runs"].items():
        speedup = f"{run.get('speedup_vs_sequential', 1.0):.2f}x"
        if not run.get("speedup_valid", True):
            speedup += " (oversubscribed)"
        if "speedup_vs_queue" in run:
            speedup += f" ({run['speedup_vs_queue']:.2f}x queue)"
        rows.append([
            name,
            f"{run['elapsed_s']:.3f}",
            f"{run['pkts_per_sec']:,.0f}",
            speedup,
        ])
    lines = [
        f"workload: campus seed=42 duration={results['workload']['duration_s']}s "
        f"gbps={results['workload']['gbps']} "
        f"({results['workload']['packets']} packets), "
        f"filter={FILTER!r} datatype={DATATYPE!r}",
        f"machine: {results['cpu_count']} CPU(s) available",
        "",
    ]
    lines.extend(table(
        ["backend", "elapsed (s)", "pkts/sec", "speedup"], rows))
    if results["cpu_count"] < 4:
        lines.append("")
        lines.append(
            f"NOTE: only {results['cpu_count']} CPU(s) available — the "
            "parallel numbers measure sharding+IPC overhead, not "
            "scaling; run on a multi-core machine for Figure 5-style "
            "speedups.")
    emit("wallclock_scaling", lines)
    JSON_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"(json written to {JSON_PATH})")


def test_wallclock_scaling(benchmark):
    results = benchmark.pedantic(run_wallclock_scaling, rounds=1,
                                 iterations=1)
    report(results)
    # Determinism holds in every regime: identical counters at 4 workers.
    assert results["runs"]["parallel_4w"]["counters_match_sequential"]
    # The scaling claim needs real CPUs to demonstrate.
    if results["cpu_count"] >= 4:
        assert results["runs"]["parallel_4w"]["speedup_vs_sequential"] \
            >= 2.0
    else:
        # Single-core regime: the backend must still complete and stay
        # within a sane overhead envelope (not pathologically slower).
        assert results["runs"]["parallel_4w"]["speedup_vs_sequential"] \
            > 0.25


if __name__ == "__main__":
    report(run_wallclock_scaling())
