"""Columnar-vs-scalar parity report (CI artifact).

Replays two workloads through the columnar hot path and the scalar
parse-once path and records whether they agree:

1. **Per-packet filter verdicts** over a malformed-frame corpus (VLAN,
   QinQ, IPv4 options, IPv6 extension headers, fragments, truncation,
   plain v4/v6 TCP/UDP) plus a campus traffic sample, for a panel of
   filters in both codegen and interp modes.
2. **End-to-end AggregateStats** byte equality on the campus workload.

Writes ``benchmarks/results/columnar_parity.json`` and exits non-zero
on any disagreement, so CI can both gate on and archive the report.
"""

from __future__ import annotations

import json
import struct
import sys
from pathlib import Path

from repro import Runtime, RuntimeConfig
from repro.filter import compile_filter
from repro.filter.batch import NO_MATCH, encode_verdict
from repro.packet import Mbuf, build_icmp_echo, build_tcp_packet, \
    build_udp_packet
from repro.packet.columnar import decode_mbufs
from repro.traffic import CampusTrafficGenerator

REPORT_PATH = Path(__file__).parent / "results" / "columnar_parity.json"

FILTERS = (
    "tcp",
    "udp",
    "ipv4",
    "ipv6",
    "tcp.dst_port = 443",
    "ipv4.src_addr in 10.0.0.0/8 and tcp",
    "ipv6 and udp.dst_port = 53",
)


def _vlan(frame: bytes, tpid: int = 0x8100) -> bytes:
    return frame[:12] + struct.pack("!HH", tpid, 0x0064) + frame[12:]


def _ipv4_options(frame: bytes) -> bytes:
    out = bytearray(frame)
    out[14] = 0x46
    struct.pack_into("!H", out, 16,
                     struct.unpack_from("!H", out, 16)[0] + 4)
    return bytes(out[:34]) + b"\x01\x01\x01\x00" + bytes(out[34:])


def _ipv6_hopopts(frame: bytes) -> bytes:
    out = bytearray(frame)
    transport = out[20]
    out[20] = 0
    struct.pack_into("!H", out, 18,
                     struct.unpack_from("!H", out, 18)[0] + 8)
    return bytes(out[:54]) + bytes([transport, 0]) + b"\x00" * 6 \
        + bytes(out[54:])


def corpus():
    tcp4 = build_tcp_packet(src="10.0.0.1", dst="192.168.1.2",
                            src_port=33000, dst_port=443, payload=b"x")
    udp4 = build_udp_packet(src="10.0.0.9", dst="8.8.8.8",
                            src_port=5353, dst_port=53, payload=b"q")
    tcp6 = build_tcp_packet(src="2001:db8::1", dst="2001:db8::2",
                            src_port=50000, dst_port=443, payload=b"y")
    udp6 = build_udp_packet(src="2001:db8::9", dst="2606:4700::1111",
                            src_port=40000, dst_port=53, payload=b"z")
    frag = bytearray(tcp4)
    struct.pack_into("!H", frag, 20, 4)
    frames = [
        tcp4, udp4, tcp6, udp6,
        _vlan(tcp4), _vlan(_vlan(tcp4), tpid=0x88A8),
        _ipv4_options(tcp4), bytes(frag), _ipv6_hopopts(tcp6),
        build_icmp_echo("10.0.0.1", "10.0.0.2"),
        tcp4[:10], tcp4[:26], tcp4[:42], tcp6[:34], b"",
    ]
    return [Mbuf(frame, 0.001 * (i + 1), 0)
            for i, frame in enumerate(frames)]


def check_filters(mbufs) -> dict:
    """Per-row verdict agreement, columnar batch vs scalar walk."""
    cols = decode_mbufs(mbufs)
    fast_rows = sum(1 for f in cols.fast if f)
    out = {"rows": len(mbufs), "fast_rows": fast_rows, "filters": {}}
    failed = False
    for filter_str in FILTERS:
        for mode in ("codegen", "interp"):
            compiled = compile_filter(filter_str, mode=mode)
            batch = compiled.packet_filter_batch
            entry_key = f"{filter_str} [{mode}]"
            if batch is None:
                out["filters"][entry_key] = {"batch_supported": False}
                failed = True
                continue
            verdicts = batch(cols)
            mismatches = 0
            for i, mbuf in enumerate(mbufs):
                if not cols.fast[i]:
                    continue  # slow rows re-run the scalar filter
                result = compiled.packet_filter(Mbuf(bytes(mbuf.data)))
                want = (encode_verdict(result.node, result.terminal)
                        if result.matched else NO_MATCH)
                if verdicts[i] != want:
                    mismatches += 1
            out["filters"][entry_key] = {
                "batch_supported": True,
                "mismatches": mismatches,
            }
            failed = failed or mismatches > 0
    out["ok"] = not failed
    return out


def check_end_to_end() -> dict:
    """AggregateStats byte equality, columnar vs scalar runtime."""

    def canonical(columnar: bool) -> str:
        traffic = list(CampusTrafficGenerator(seed=42).packets(
            duration=0.1, gbps=0.1))
        runtime = Runtime(RuntimeConfig(cores=2, columnar=columnar),
                          filter_str="tcp", datatype="connection",
                          callback=None)
        report = runtime.run(iter(traffic))
        return json.dumps(report.stats.to_dict(), sort_keys=True)

    scalar = canonical(False)
    columnar = canonical(True)
    return {"stats_bytes": len(scalar),
            "byte_identical": scalar == columnar,
            "ok": scalar == columnar}


def main() -> int:
    mbufs = corpus() + list(CampusTrafficGenerator(seed=7).packets(
        duration=0.02, gbps=0.05))
    report = {
        "verdicts": check_filters(mbufs),
        "end_to_end": check_end_to_end(),
    }
    report["ok"] = report["verdicts"]["ok"] and report["end_to_end"]["ok"]
    REPORT_PATH.parent.mkdir(exist_ok=True)
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"(report written to {REPORT_PATH})")
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
