"""Table 2 — campus traffic statistics, measured with Retina itself.

The paper notes its Appendix C numbers were collected "through
measurement applications developed using Retina itself". We do the
same: a match-all ConnectionRecord subscription (timeouts relaxed so
long-idle flows are not cut short) measures the synthetic campus mix,
and the table reports generated-vs-paper values.

The synthetic generator is *calibrated* to these targets, so this
benchmark is the closed loop that verifies the calibration — the
substrate every throughput experiment rests on.
"""

from __future__ import annotations

import pytest

from _util import emit, table
from repro import Runtime, RuntimeConfig, TimeoutConfig
from repro.traffic import CampusTrafficGenerator


def _percentile(values, q):
    if not values:
        return 0.0
    ordered = sorted(values)
    return ordered[min(int(q * len(ordered)), len(ordered) - 1)]


def run_table2():
    traffic = CampusTrafficGenerator(seed=22).connections(
        2500, duration=120.0)
    records = []
    runtime = Runtime(
        # As the paper notes, measurement apps run "with appropriate
        # configurations where necessary, such as turning off
        # inactivity timeouts".
        RuntimeConfig(cores=8, timeouts=TimeoutConfig(None, None)),
        filter_str="",
        datatype="connection",
        callback=records.append,
    )
    stats = runtime.run(iter(traffic)).stats
    return traffic, records, stats


def report(traffic, records, stats):
    total_pkts = stats.ingress_packets
    total_bytes = stats.ingress_bytes
    tcp = [r for r in records if r.five_tuple.protocol == 6]
    udp = [r for r in records if r.five_tuple.protocol == 17]
    tcp_bytes = sum(r.total_bytes for r in tcp)
    single_syn = [r for r in tcp if r.is_single_syn]
    data_tcp = [r for r in tcp if not r.is_single_syn]
    synack = [r.established_ts - r.first_ts for r in tcp
              if r.established_ts is not None]
    incomplete = [r for r in data_tcp
                  if not r.terminated_gracefully]
    ooo_flows = [r for r in data_tcp if r.ooo_orig + r.ooo_resp > 0]
    gaps = []
    last_seen = {}
    for mbuf in traffic:
        pass  # per-packet gap measurement handled via records below

    rows = [
        ["Packet size (avg bytes)",
         f"{total_bytes / total_pkts:.0f}", "895"],
        ["Fraction of TCP connections",
         f"{len(tcp) / len(records) * 100:.1f}%", "69.7%"],
        ["Fraction of TCP stream bytes",
         f"{tcp_bytes / total_bytes * 100:.1f}%", "72.4%"],
        ["Fraction of UDP connections",
         f"{len(udp) / len(records) * 100:.1f}%", "29.8%"],
        ["Fraction of single-SYN connections (of TCP)",
         f"{len(single_syn) / len(tcp) * 100:.1f}%", "65%"],
        ["Time to SYN/ACK (P99 seconds)",
         f"{_percentile(synack, 0.99):.2f}", "1"],
        ["Fraction of incomplete flows (of data TCP)",
         f"{len(incomplete) / max(len(data_tcp), 1) * 100:.1f}%", "4.6%"],
        ["Fraction of out-of-order flows (of data TCP)",
         f"{len(ooo_flows) / max(len(data_tcp), 1) * 100:.1f}%", "6%"],
        ["Packets per connection (avg)",
         f"{total_pkts / len(records):.0f}", "121"],
    ]
    lines = table(["characteristic", "measured", "paper"], rows)
    lines.append("")
    lines.append(f"({len(records)} connections, {total_pkts} packets, "
                 f"{total_bytes / 1e6:.1f} MB)")
    emit("table2_campus_stats", lines)
    return {
        "avg_pkt": total_bytes / total_pkts,
        "tcp_frac": len(tcp) / len(records),
        "udp_frac": len(udp) / len(records),
        "tcp_bytes_frac": tcp_bytes / total_bytes,
        "single_syn_frac": len(single_syn) / len(tcp),
        "synack_p99": _percentile(synack, 0.99),
        "incomplete_frac": len(incomplete) / max(len(data_tcp), 1),
        "ooo_frac": len(ooo_flows) / max(len(data_tcp), 1),
        "pkts_per_conn": total_pkts / len(records),
    }


def test_table2_campus_stats(benchmark):
    traffic, records, stats = benchmark.pedantic(run_table2, rounds=1,
                                                 iterations=1)
    measured = report(traffic, records, stats)
    assert 750 < measured["avg_pkt"] < 1050          # paper 895
    assert 0.60 < measured["tcp_frac"] < 0.80        # paper 0.697
    assert 0.20 < measured["udp_frac"] < 0.40        # paper 0.298
    assert measured["tcp_bytes_frac"] > 0.60         # paper 0.724
    assert 0.55 < measured["single_syn_frac"] < 0.75  # paper 0.65
    assert 0.01 < measured["incomplete_frac"] < 0.12  # paper 0.046
    assert 0.02 < measured["ooo_frac"] < 0.15         # paper 0.06
    assert measured["pkts_per_conn"] > 10             # paper 121


if __name__ == "__main__":
    traffic, records, stats = run_table2()
    report(traffic, records, stats)
