"""Figure 13 — distribution of packet sizes on the campus network.

The paper's histogram is strongly bimodal: a mode of small control
packets near the 56-B floor and a dominant mode at the 1514-B MTU,
averaging 895 B. This benchmark histograms the synthetic campus mix
over the same bin edges as the figure's x-axis.
"""

from __future__ import annotations

import pytest

from _util import emit, table
from repro.traffic import CampusTrafficGenerator

BIN_EDGES = [56, 218, 380, 542, 704, 866, 1028, 1190, 1352, 1514]


def run_figure13():
    traffic = CampusTrafficGenerator(seed=13).packets(duration=0.5,
                                                      gbps=0.4)
    sizes = [len(m) for m in traffic]
    counts = [0] * len(BIN_EDGES)
    for size in sizes:
        for i, edge in enumerate(BIN_EDGES):
            if size <= edge:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
    total = len(sizes)
    fractions = [c / total for c in counts]
    avg = sum(sizes) / total
    return fractions, avg, total


def report(fractions, avg, total):
    rows = [
        [f"<= {edge} B", f"{frac * 100:6.2f}%",
         "#" * int(frac * 120)]
        for edge, frac in zip(BIN_EDGES, fractions)
    ]
    lines = table(["bin", "fraction", "histogram"], rows)
    lines.append("")
    lines.append(f"average packet size: {avg:.0f} B (paper: 895 B); "
                 f"{total} packets")
    lines.append("Paper reference: bimodal — control packets at the "
                 "56-218 B floor, data packets at the 1514 B MTU.")
    emit("fig13_packet_sizes", lines)


def test_fig13_packet_sizes(benchmark):
    fractions, avg, total = benchmark.pedantic(run_figure13, rounds=1,
                                               iterations=1)
    report(fractions, avg, total)
    # Bimodal: the floor bin and the MTU bin are the two largest.
    top_two = sorted(range(len(fractions)), key=lambda i: -fractions[i])[:2]
    assert set(top_two) == {0, len(fractions) - 1}
    assert fractions[0] > 0.15
    assert fractions[-1] > 0.25
    assert 750 < avg < 1050  # paper: 895 B


if __name__ == "__main__":
    fractions, avg, total = run_figure13()
    report(fractions, avg, total)
