"""Figure 7 — effect of multi-layer filter decomposition.

The paper subscribes to TCP connection records filtered to Netflix
video servers (``tcp.port = 443 and tls.sni ~
'(.+?\\.)?nflxvideo\\.net'``) with hardware filtering enabled, and
records, per pipeline stage, the fraction of ingress packets that
trigger it and the average cycles per invocation.

Expected shape (paper): 100% → 35.4% (hw+sw packet filter) → 35.4%
(conn table) → 1.54% (reassembly) → 0.415% (parsing) → 0.07% (session
filter) → 0.000188% (callback); stage costs 0 / 102.9 / 41.6 / 353.8 /
2122.9 / 702.3 / 53672.6 cycles. The absolute fractions depend on the
traffic mix (how much of the link is TCP/443 and how much is Netflix);
the reproduction target is the monotonic orders-of-magnitude reduction
and the resulting tiny average end-to-end cost per ingress packet.
"""

from __future__ import annotations

import pytest

from _util import emit, table
from repro import Runtime, RuntimeConfig, Stage
from repro.traffic import CampusTrafficGenerator

FILTER = r"tcp.port = 443 and tls.sni ~ '(.+?\.)?nflxvideo\.net'"

PAPER_FRACTIONS = {
    Stage.HARDWARE_FILTER: 1.0,
    Stage.PACKET_FILTER: 0.354,
    Stage.CONN_TRACK: 0.354,
    Stage.REASSEMBLY: 0.0154,
    Stage.PARSING: 0.00415,
    Stage.SESSION_FILTER: 0.0007,
    Stage.CALLBACK: 0.00000188,
}
PAPER_CYCLES = {
    Stage.HARDWARE_FILTER: 0.0,
    Stage.PACKET_FILTER: 102.9,
    Stage.CONN_TRACK: 41.6,
    Stage.REASSEMBLY: 353.8,
    Stage.PARSING: 2122.9,
    Stage.SESSION_FILTER: 702.3,
    Stage.CALLBACK: 53672.6,
}


def run_figure7():
    # The paper's campus link carries ~35% TCP/443 packets; weight the
    # mix away from TLS so the hardware+packet filters have comparable
    # work to discard.
    from repro.traffic import CampusProfile
    from repro.traffic.distributions import FlowSizeModel, ServiceMix
    profile = CampusProfile(
        service_mix=ServiceMix(tls=0.37, http=0.28, ssh=0.05,
                               opaque_tcp=0.30),
        flow_sizes=FlowSizeModel(mu=10.0, sigma=1.8, cap_bytes=1_500_000),
        dns_fraction=0.85,  # less QUIC-style bulk UDP in this mix
    )
    traffic = CampusTrafficGenerator(seed=77, profile=profile).connections(
        2500, duration=1.0)
    runtime = Runtime(
        RuntimeConfig(cores=8, hardware_filter=True,
                      callback_cycles=53_672),
        filter_str=FILTER,
        datatype="connection",
        callback=lambda record: None,
    )
    return runtime.run(iter(traffic)).stats


def report(stats):
    fractions = stats.stage_fractions()
    mean_cycles = stats.stage_mean_cycles()
    rows = []
    for stage in (Stage.HARDWARE_FILTER, Stage.PACKET_FILTER,
                  Stage.CONN_TRACK, Stage.REASSEMBLY, Stage.PARSING,
                  Stage.SESSION_FILTER, Stage.CALLBACK):
        rows.append([
            stage.value,
            f"{fractions[stage] * 100:.5g}%",
            f"{PAPER_FRACTIONS[stage] * 100:.5g}%",
            f"{mean_cycles[stage]:.1f}",
            f"{PAPER_CYCLES[stage]:.1f}",
        ])
    lines = table(
        ["stage", "measured frac", "paper frac",
         "measured cyc/run", "paper cyc/run"], rows)
    per_packet = stats.cycles_per_ingress_packet
    lines.append("")
    lines.append(f"average end-to-end cycles per ingress packet: "
                 f"{per_packet:.1f}")
    lines.append("(capture stage excluded from the table, as in the "
                 "paper's Figure 7)")
    emit("fig7_filter_decomposition", lines)
    return fractions


def test_fig7_filter_decomposition(benchmark):
    stats = benchmark.pedantic(run_figure7, rounds=1, iterations=1)
    fractions = report(stats)
    # Hierarchical reduction: every stage sees no more traffic than the
    # one before it.
    order = [Stage.HARDWARE_FILTER, Stage.PACKET_FILTER, Stage.CONN_TRACK,
             Stage.REASSEMBLY, Stage.PARSING, Stage.SESSION_FILTER,
             Stage.CALLBACK]
    values = [fractions[stage] for stage in order]
    assert values[0] == 1.0
    for earlier, later in zip(values[2:], values[3:]):
        assert later <= earlier + 1e-12
    # Packet filter runs on a strict subset (hw filter drops non-TCP).
    assert fractions[Stage.PACKET_FILTER] < 1.0
    # Orders-of-magnitude reduction by the end of the pipeline.
    assert fractions[Stage.CALLBACK] < 0.001
    assert fractions[Stage.REASSEMBLY] < fractions[Stage.CONN_TRACK] / 2
    # Session filter runs once per parsed session, a tiny fraction.
    assert fractions[Stage.SESSION_FILTER] < 0.01


if __name__ == "__main__":
    report(run_figure7())
