"""Ablation — the value of multi-layer filter decomposition.

Section 4 claims the filters are "not merely a convenience": pushing
predicates down to earlier layers discards out-of-scope traffic before
expensive stages run. This ablation expresses the same analysis task
(Netflix connection records) three ways and compares cycle demand:

1. **full** — the complete decomposed filter (hardware + packet +
   connection + session layers), the paper's design;
2. **packet-only** — only ``tcp.port = 443`` in the filter; the SNI
   check moves into the callback (as a user without session filters
   would write it), so every 443 connection is parsed and delivered;
3. **no-filter** — everything in the callback: every connection on the
   link is tracked, reassembled, parsed, and delivered.
"""

from __future__ import annotations

import re

import pytest

from _util import emit, table
from repro import Runtime, RuntimeConfig, Stage
from repro.traffic import CampusTrafficGenerator

SNI_RE = re.compile(r"(.+?\.)?nflxvideo\.net")
FULL = r"tcp.port = 443 and tls.sni ~ '(.+?\.)?nflxvideo\.net'"

#: Cycles a hand-written callback-side SNI check costs (regex on the
#: parsed handshake plus the record bookkeeping).
CALLBACK_CHECK_CYCLES = 1500.0


def _run(traffic, filter_str, datatype, callback_cycles):
    hits = []

    def callback(obj):
        sni = obj.sni() if hasattr(obj, "sni") else None
        if sni and SNI_RE.search(sni):
            hits.append(sni)

    runtime = Runtime(
        RuntimeConfig(cores=8, callback_cycles=callback_cycles),
        filter_str=filter_str,
        datatype=datatype,
        callback=callback,
    )
    stats = runtime.run(iter(traffic)).stats
    return stats, len(hits)


def run_ablation():
    traffic = CampusTrafficGenerator(seed=41).packets(duration=0.5,
                                                      gbps=0.4)
    results = {}
    # Full decomposition: the framework discards early; the callback is
    # trivial.
    results["full"] = _run(traffic, FULL, "tls_handshake", 200.0)
    # Packet-layer only: every TLS handshake on 443 is parsed and
    # delivered; the user's callback re-implements the SNI check.
    results["packet-only"] = _run(traffic, "tcp.port = 443",
                                  "tls_handshake", CALLBACK_CHECK_CYCLES)
    # No filter at all: every connection probed and parsed.
    results["no-filter"] = _run(traffic, "", "tls_handshake",
                                CALLBACK_CHECK_CYCLES)
    return results


def report(results):
    rows = []
    for name, (stats, hits) in results.items():
        rows.append([
            name,
            hits,
            stats.stage_invocations[Stage.CONN_TRACK],
            stats.stage_invocations[Stage.PARSING],
            stats.callbacks,
            f"{stats.cycles_per_ingress_packet:.1f}",
            f"{stats.max_zero_loss_gbps():.1f}",
        ])
    lines = table(
        ["variant", "netflix hits", "conn-track runs", "parse runs",
         "callbacks", "cycles/pkt", "zero-loss Gbps"], rows)
    lines.append("")
    lines.append("All variants find the same Netflix handshakes; the "
                 "decomposed filter spends the fewest cycles doing it.")
    emit("ablation_filter_layers", lines)


def test_ablation_filter_layers(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report(results)
    full_stats, full_hits = results["full"]
    packet_stats, packet_hits = results["packet-only"]
    none_stats, none_hits = results["no-filter"]
    # Identical analysis outcome.
    assert full_hits == packet_hits == none_hits
    assert full_hits > 0
    # Strictly increasing cost as filtering moves later.
    assert full_stats.cycles_per_ingress_packet < \
        packet_stats.cycles_per_ingress_packet < \
        none_stats.cycles_per_ingress_packet
    # The decomposed filter delivers only matching sessions.
    assert full_stats.callbacks == full_hits
    assert packet_stats.callbacks > full_stats.callbacks


if __name__ == "__main__":
    report(run_ablation())
