"""Overload ladder under bursts — goodput retained vs load shed.

The paper's Section 6.2 observes that under overload Retina drops
packets at the NIC with no say in *what* is lost. This benchmark
measures what the closed-loop ladder (:mod:`repro.overload`,
docs/OVERLOAD.md) buys over that baseline: a burst workload is swept
across arrival intensities with a deliberately punishing per-packet
cost, and for each intensity we record how much traffic the ladder
refused, at which rung, and how much *admitted* work completed —
the explicit, attributed loss that replaces silent tail drop.

Every run appends hard numbers to ``BENCH_overload.json`` at the repo
root:

- per intensity: arrivals, packets analyzed / shed (per rung and per
  funnel layer), max rung reached, rung transition count, goodput
  retained (fraction of arrivals analyzed), callbacks delivered;
- the accounting invariant (analyzed + shed == seen) is asserted on
  every cell — the ledger is the benchmark's own referee.

Interpretation notes:

- Virtual-time benchmark: the overload is *modeled* (a large
  ``conn_track`` stage cost), so results are deterministic and
  machine-independent, like the paper-figure benchmarks.
- At intensity 1.0 (no burst) the ladder should stay at rung 0 and
  shed nothing: the controller must be a no-op on a healthy core.

Env knobs: ``BENCH_OVERLOAD_DURATION`` (virtual seconds, default 1.0),
``BENCH_OVERLOAD_GBPS`` (default 0.05) — the CI smoke run sets these
tiny.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from _util import emit, table
from repro import Runtime, RuntimeConfig
from repro.core.cycles import CostModel
from repro.overload import RUNG_NAMES
from repro.traffic import BurstTrafficGenerator, BurstWindow

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_overload.json"

INTENSITIES = (1.0, 4.0, 8.0, 16.0)
#: ~0.33ms of virtual conn-track work per stateful packet: cheap
#: enough that the quiet baseline keeps up, expensive enough that the
#: burst window pushes a core past its arrival clock.
HEAVY = CostModel(conn_track=1e6)


def _duration() -> float:
    return float(os.environ.get("BENCH_OVERLOAD_DURATION", "1.0"))


def _gbps() -> float:
    return float(os.environ.get("BENCH_OVERLOAD_GBPS", "0.1"))


def _run(traffic, policy: str):
    callbacks = 0

    def callback(_record) -> None:
        nonlocal callbacks
        callbacks += 1

    runtime = Runtime(
        RuntimeConfig(cores=2, cost_model=HEAVY,
                      overload_policy=policy,
                      overload_target_lag=0.02),
        filter_str="", datatype="connection", callback=callback,
    )
    report = runtime.run(iter(traffic))
    return report, callbacks


def run_overload_burst():
    results = {
        "workload": {
            "generator": "burst",
            "seed": 42,
            "duration_s": _duration(),
            "gbps": _gbps(),
            "conn_track_cycles": HEAVY.conn_track,
            "datatype": "connection",
        },
        "intensities": {},
    }
    for intensity in INTENSITIES:
        traffic = list(BurstTrafficGenerator(
            seed=42, windows=(BurstWindow(intensity=intensity),),
        ).packets(duration=_duration(), gbps=_gbps()))
        report, callbacks = _run(traffic, policy="ladder")
        ledger = report.overload
        seen = ledger.packets_seen
        shed = ledger.packets_shed
        analyzed = ledger.packets_analyzed
        # The ledger referees its own benchmark.
        assert analyzed + shed == seen, (analyzed, shed, seen)
        results["intensities"][str(intensity)] = {
            "packets": len(traffic),
            "packets_seen": seen,
            "packets_analyzed": analyzed,
            "packets_shed": shed,
            "goodput_retained": analyzed / seen if seen else 1.0,
            "shed_fraction": shed / seen if seen else 0.0,
            "conns_shed": report.stats.conns_shed,
            "callbacks": callbacks,
            "max_rung": ledger.max_rung_seen,
            "rung_transitions": len(ledger.transitions),
            "shed_by_rung": {RUNG_NAMES[r]: n for r, n in
                             enumerate(ledger.shed_packets) if n},
            "shed_by_layer": dict(sorted(ledger.layer_packets.items())),
        }
    return results


def report(results) -> None:
    rows = []
    for intensity, cell in results["intensities"].items():
        rows.append([
            intensity,
            cell["packets_seen"],
            cell["packets_shed"],
            f"{cell['goodput_retained']:.3f}",
            cell["max_rung"],
            cell["rung_transitions"],
            cell["callbacks"],
        ])
    workload = results["workload"]
    lines = [
        f"workload: burst seed=42 duration={workload['duration_s']}s "
        f"gbps={workload['gbps']} "
        f"conn_track={workload['conn_track_cycles']:.0e} cycles/pkt",
        "",
    ]
    lines.extend(table(
        ["intensity", "seen", "shed", "goodput", "max rung",
         "transitions", "callbacks"], rows))
    emit("overload_burst", lines)
    JSON_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"(json written to {JSON_PATH})")


def test_overload_burst(benchmark):
    results = benchmark.pedantic(run_overload_burst, rounds=1,
                                 iterations=1)
    report(results)
    cells = results["intensities"]
    # A healthy core never climbs: no shedding without a burst.
    assert cells["1.0"]["packets_shed"] == 0
    assert cells["1.0"]["max_rung"] == 0
    # The load-dependent claims assume the default workload size; a
    # shrunken smoke run (env knobs) may not reach the ladder at all.
    workload = results["workload"]
    if workload["duration_s"] >= 1.0 and workload["gbps"] >= 0.1:
        # Under heavy bursts the ladder engages, sheds, and still
        # retains goodput. (Shed fractions are NOT asserted monotone
        # in intensity: each intensity draws a fresh heavy-tailed
        # trace, so total packet counts vary run to run.)
        heaviest = cells[str(max(INTENSITIES))]
        assert heaviest["packets_shed"] > 0
        assert heaviest["max_rung"] >= 1
        assert 0.0 < heaviest["goodput_retained"] < 1.0


if __name__ == "__main__":
    report(run_overload_burst())
