"""Future work (paper §5.3/§9) — alternative callback execution models.

Retina runs callbacks inline on the receive core; Section 5.3 notes an
expensive callback can stall the pipeline and leaves other execution
models to future work. This benchmark compares the inline model with a
queued model (dedicated worker pool behind a hand-off queue) on a
packet subscription with a heavy per-packet callback — the workload
Figure 5a shows collapsing inline.

Expected shape: the queued model decouples the receive cores (their
ceiling returns to near the filter-only rate at the cost of an enqueue
fee), while the *worker pool* becomes the delivery bottleneck — total
system capacity is the min of the two, but receive-side packet loss no
longer follows callback cost.
"""

from __future__ import annotations

import pytest

from _util import emit, table
from repro import Runtime, RuntimeConfig
from repro.traffic import CampusTrafficGenerator

CALLBACK_CYCLES = 100_000.0
WORKERS = 4


def _run(traffic, execution, workers=WORKERS):
    runtime = Runtime(
        RuntimeConfig(cores=8, hardware_filter=False,
                      callback_cycles=CALLBACK_CYCLES,
                      callback_execution=execution,
                      callback_workers=workers),
        filter_str="tcp",
        datatype="packet",
        callback=lambda packet: None,
    )
    report = runtime.run(iter(traffic))
    return report.stats, runtime.executor


def run_benchmark():
    traffic = CampusTrafficGenerator(seed=95).packets(duration=0.4,
                                                      gbps=0.3)
    inline_stats, inline_exec = _run(traffic, "inline")
    queued_stats, queued_exec = _run(traffic, "queued")
    return inline_stats, queued_stats, queued_exec


def report(inline_stats, queued_stats, queued_exec):
    hz = inline_stats.cost_model.cpu_hz
    worker_busy = queued_exec.stats.worker_busy_seconds(hz, WORKERS)
    rows = [
        ["inline (8 RX cores)",
         f"{inline_stats.max_zero_loss_gbps():.1f}",
         inline_stats.callbacks, "-", "-"],
        [f"queued (8 RX + {WORKERS} workers)",
         f"{queued_stats.max_zero_loss_gbps():.1f}",
         queued_stats.callbacks,
         f"{worker_busy:.3f}s",
         queued_exec.stats.dropped],
    ]
    lines = table(
        ["model", "RX zero-loss Gbps", "deliveries",
         "per-worker busy CPU", "worker-dropped"], rows)
    rate_ceiling = queued_exec.max_zero_loss_callbacks_per_second(hz)
    lines.append("")
    lines.append(f"per-packet callback cost: {CALLBACK_CYCLES:.0f} cycles; "
                 f"worker pool sustains {rate_ceiling / 1e3:.0f}K "
                 f"callbacks/s")
    lines.append("Inline: the RX cores absorb the callback and the "
                 "pipeline collapses (Figure 5a's 100K-cycle curve). "
                 "Queued: RX recovers; the worker pool is the new, "
                 "separately scalable bottleneck.")
    emit("futurework_queued_callbacks", lines)


def test_futurework_queued_callbacks(benchmark):
    inline_stats, queued_stats, queued_exec = benchmark.pedantic(
        run_benchmark, rounds=1, iterations=1)
    report(inline_stats, queued_stats, queued_exec)
    # Same deliveries either way.
    assert inline_stats.callbacks == queued_stats.callbacks
    # Queued execution restores the receive-side ceiling by well over
    # an order of magnitude for this callback cost.
    assert queued_stats.max_zero_loss_gbps() > \
        inline_stats.max_zero_loss_gbps() * 10
    # And the worker pool's demand is fully accounted.
    assert queued_exec.stats.worker_cycles == pytest.approx(
        CALLBACK_CYCLES * queued_stats.callbacks)


if __name__ == "__main__":
    inline_stats, queued_stats, queued_exec = run_benchmark()
    report(inline_stats, queued_stats, queued_exec)
