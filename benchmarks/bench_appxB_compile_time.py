"""Appendix B — filter compilation cost.

The paper notes that static filter code generation "incurs a negligible
increase in compilation time, but would necessitate recompilation for
different filter expressions" — 73 s for an incremental Rust build with
LTO. The Python analogue compiles in milliseconds, which is worth
measuring: it removes the one operational downside the paper concedes
for compile-time filters.

This benchmark times `compile_filter` (parse → DNF → trie → hardware
rules → source generation → ``compile()``/``exec``) across filters of
growing complexity, in both backends.
"""

from __future__ import annotations

import time

import pytest

from _util import emit, table
from repro.filter import compile_filter

NETFLIX_32 = (
    "ipv4.addr in 23.246.0.0/18 or ipv4.addr in 37.77.184.0/21 or "
    "ipv4.addr in 45.57.0.0/17 or ipv4.addr in 64.120.128.0/17 or "
    "ipv4.addr in 66.197.128.0/17 or ipv4.addr in 108.175.32.0/20 or "
    "ipv4.addr in 185.2.220.0/22 or ipv4.addr in 185.9.188.0/22 or "
    "ipv4.addr in 192.173.64.0/18 or ipv4.addr in 198.38.96.0/19 or "
    "ipv4.addr in 198.45.48.0/20 or ipv4.addr in 208.75.79.0/24 or "
    "ipv6.addr in 2620:10c:7000::/44 or ipv6.addr in 2a00:86c0::/32 or "
    "tls.sni ~ 'netflix.com' or tls.sni ~ 'nflxvideo.net' or "
    "tls.sni ~ 'nflximg.net' or tls.sni ~ 'nflxext.com' or "
    "tls.sni ~ 'nflximg.com' or tls.sni ~ 'nflxso.net'"
)

FILTERS = [
    ("match-all", ""),
    ("1 predicate", "ipv4"),
    ("2 predicates", "tcp.port = 443"),
    ("session regex", "tcp.port = 443 and tls.sni ~ '(.+?\\.)?nflx'"),
    ("32 predicates", NETFLIX_32),
]


def _time_compile(filter_str: str, mode: str, repeats: int = 20) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        compile_filter(filter_str, mode=mode)
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmark():
    results = {}
    for label, filter_str in FILTERS:
        for mode in ("codegen", "interp"):
            results[(label, mode)] = _time_compile(filter_str, mode)
    return results


def report(results):
    rows = []
    for label, _ in FILTERS:
        codegen_ms = results[(label, "codegen")] * 1e3
        interp_ms = results[(label, "interp")] * 1e3
        rows.append([label, f"{codegen_ms:.2f} ms", f"{interp_ms:.2f} ms"])
    lines = table(["filter", "codegen compile", "interp construct"], rows)
    lines.append("")
    lines.append("Paper reference: the Rust build pays 73 s per filter "
                 "change (incremental + LTO); the reproduction's "
                 "codegen stays in milliseconds, so recompiling per "
                 "filter has no operational cost here.")
    emit("appxB_compile_time", lines)


def test_appxB_compile_time(benchmark):
    results = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    report(results)
    worst = max(t for (_, mode), t in results.items()
                if mode == "codegen")
    assert worst < 0.5  # "negligible", concretely
    # Complexity grows compile time but stays in the same class.
    assert results[("32 predicates", "codegen")] > \
        results[("1 predicate", "codegen")]


if __name__ == "__main__":
    report(run_benchmark())
