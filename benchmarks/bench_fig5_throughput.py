"""Figure 5 — zero-loss processing throughput vs cores and callback cost.

Reproduces the three panels: (a) raw packets, (b) TCP connection
records, (c) parsed TLS handshakes; cores ∈ {2, 4, 8, 16}; callback
complexity ∈ {0, 1K, 100K, 1M} cycles (the paper busy-loops that many
cycles per callback).

Method: one pipeline run per (subscription, cores) over the same
campus traffic measures the base cycle demand and the callback count;
the ceiling for each callback cost is then the ingress rate at which
the busiest core's cycle demand meets its 3 GHz budget. Hardware
filtering is disabled, as in the paper's Section 6.1 methodology.

Expected shape (paper): raw packets ≥162 Gbps on 2 cores with an empty
callback, collapsing under 100K+ cycle callbacks; connection records
≥127 Gbps on 8 cores; TLS handshakes >160 Gbps on 8 cores *even for
heavy callbacks*, because callbacks run per handshake, not per packet.
"""

from __future__ import annotations

import pytest

from _util import emit, gbps, table
from repro import Runtime, RuntimeConfig
from repro.traffic import CampusTrafficGenerator

CORES = (2, 4, 8, 16)
CALLBACK_CYCLES = (0, 1_000, 100_000, 1_000_000)
PANELS = [
    ("a", "Raw Packets", "packet", ""),
    ("b", "TCP Connection Records", "connection", "tcp"),
    ("c", "TLS Handshakes", "tls_handshake", "tls"),
]


def _ceiling_gbps(stats, callback_cycles: float) -> float:
    """Zero-loss ceiling with a hypothetical per-callback cost, from
    one measured run (the ledger makes callback cost separable)."""
    base_cycles = stats.total_cycles
    extra = callback_cycles * stats.callbacks
    cycles_per_byte = (base_cycles + extra) / max(stats.ingress_bytes, 1)
    if cycles_per_byte <= 0:
        return float("inf")
    busy = stats.per_core_busy_seconds
    balance = (max(busy) / (sum(busy) / len(busy))) \
        if busy and sum(busy) > 0 else 1.0
    hz = stats.cost_model.cpu_hz
    return stats.cores * hz / cycles_per_byte * 8 / 1e9 / balance


def run_figure5():
    # Enough concurrent flows for RSS to balance 16 queues, with
    # realistically heavy flows so per-connection callbacks are as
    # rare relative to bytes as on the paper's campus link.
    from repro.traffic import CampusProfile
    from repro.traffic.distributions import FlowSizeModel
    profile = CampusProfile(
        flow_sizes=FlowSizeModel(mu=11.0, sigma=1.8, cap_bytes=2_000_000))
    traffic = CampusTrafficGenerator(seed=55, profile=profile).connections(
        900, duration=0.4)
    results = {}
    for panel, title, datatype, filter_str in PANELS:
        for cores in CORES:
            runtime = Runtime(
                RuntimeConfig(cores=cores, hardware_filter=False),
                filter_str=filter_str,
                datatype=datatype,
                callback=lambda obj: None,
            )
            stats = runtime.run(iter(traffic)).stats
            for cb in CALLBACK_CYCLES:
                results[(panel, cores, cb)] = _ceiling_gbps(stats, cb)
    return results


def report(results) -> None:
    lines = []
    for panel, title, datatype, filter_str in PANELS:
        lines.append(f"Figure 5{panel}: {title} "
                     f"(datatype={datatype!r}, filter={filter_str!r})")
        rows = []
        for cores in CORES:
            row = [cores] + [
                gbps(results[(panel, cores, cb)]) for cb in CALLBACK_CYCLES
            ]
            rows.append(row)
        lines.extend(table(
            ["cores", "0 cycles", "1K cycles", "100K cycles", "1M cycles"],
            rows,
        ))
        lines.append("")
    lines.append("Paper reference: (a) >=162 Gbps @2 cores empty callback; "
                 "(b) >=127 Gbps @8 cores; (c) >160 Gbps @8 cores even at "
                 "100K+ cycles per handshake.")
    emit("fig5_throughput", lines)


def test_fig5_throughput(benchmark):
    results = benchmark.pedantic(run_figure5, rounds=1, iterations=1)
    report(results)
    # Panel (a): empty-callback raw packet capture saturates the link
    # on 2 cores, and a 1M-cycle per-packet callback destroys it.
    assert results[("a", 2, 0)] > 100
    assert results[("a", 2, 1_000_000)] < 5
    # Panel (b): connection records saturate with 8 cores.
    assert results[("b", 8, 0)] > 100
    # Heavier per-record callbacks need more cores, but 16 cores keep
    # 100K-cycle callbacks above 100 Gbps (records are rarer than
    # packets).
    assert results[("b", 16, 100_000)] > results[("b", 2, 100_000)]
    # Panel (c): TLS handshake callbacks are rare relative to bytes, so
    # heavy callbacks barely dent the ceiling (our synthetic flows are
    # ~4x smaller than the campus link's, so the 1M-cycle row sits
    # lower than the paper's while preserving the ordering).
    assert results[("c", 8, 100_000)] > 100
    assert results[("c", 8, 1_000_000)] > results[("b", 8, 1_000_000)]
    # Scaling: ceilings grow near-linearly with core count (8x the
    # cores buys well over 3.5x — RSS balance absorbs the rest).
    for panel in ("a", "b", "c"):
        assert results[(panel, 16, 0)] > results[(panel, 2, 0)] * 3.5


if __name__ == "__main__":
    report(run_figure5())
