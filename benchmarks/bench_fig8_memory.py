"""Figure 8 — memory usage over time under three timeout schemes.

The paper subscribes to all TCP connection records for 30 minutes and
compares (1) Retina's default two-tier timeouts (5 s establish + 5 min
inactivity), (2) a flat 5-minute inactivity timeout, and (3) no
timeouts. Finding: the default scheme tracks 7.7x fewer concurrent
connections and uses 6.4x less steady-state memory than the flat
timeout; with no timeouts the server exhausts 340 GB of memory after
~11 minutes.

We replay the same 30 *virtual* minutes of campus-mix arrivals
(scanner-heavy: the single-SYN population dominates connection
arrivals) under each scheme and sample live connections and resident
bytes once per virtual second. The no-timeout run gets a memory limit
chosen the way the paper's 340 GB relates to its 28.6 GB steady state
(~12x), and must hit it before the run ends.
"""

from __future__ import annotations

import pytest

from _util import emit, table
from repro import Runtime, RuntimeConfig, TimeoutConfig
from repro.traffic import CampusProfile, CampusTrafficGenerator
from repro.traffic.distributions import FlowSizeModel

DURATION = 1800.0  # 30 virtual minutes
N_CONNS = 24_000


def _traffic():
    profile = CampusProfile(
        flow_sizes=FlowSizeModel(mu=8.6, sigma=1.5, cap_bytes=150_000))
    return CampusTrafficGenerator(seed=88, profile=profile).connections(
        N_CONNS, duration=DURATION)


def _run(traffic, timeouts, memory_limit=None):
    runtime = Runtime(
        RuntimeConfig(cores=16, timeouts=timeouts,
                      memory_limit_bytes=memory_limit),
        filter_str="tcp",
        datatype="connection",
        callback=lambda record: None,
    )
    report = runtime.run(iter(traffic), drain=False,
                         memory_sample_interval=1.0)
    return report


def _series(stats, bucket=60.0):
    """Total (connections, bytes) across cores, bucketed by time."""
    buckets = {}
    for ts, conns, mem in stats.memory_samples:
        key = int(ts // bucket)
        slot = buckets.setdefault(key, [0, 0, 0])
        slot[0] += conns
        slot[1] += mem
        slot[2] += 1
    series = []
    for key in sorted(buckets):
        conns, mem, n = buckets[key]
        # Samples arrive once per core per interval; n/cores intervals.
        intervals = max(n / 16, 1)
        series.append((key * bucket, conns / intervals, mem / intervals))
    return series


def _steady(series, start_frac=0.5):
    tail = series[int(len(series) * start_frac):]
    if not tail:
        return 0.0, 0.0
    conns = sum(s[1] for s in tail) / len(tail)
    mem = sum(s[2] for s in tail) / len(tail)
    return conns, mem


def run_figure8():
    traffic = _traffic()
    results = {}
    default_report = _run(traffic, TimeoutConfig.retina_default())
    results["default"] = default_report
    results["inactivity_only"] = _run(traffic,
                                      TimeoutConfig.inactivity_only())
    # Memory cap proportioned as in the paper: the server OOMs at
    # ~12x the default scheme's steady-state memory.
    _, default_mem = _steady(_series(default_report.stats))
    cap = max(int(default_mem * 12), 1_000_000)
    results["no_timeouts"] = _run(traffic, TimeoutConfig.no_timeouts(),
                                  memory_limit=cap)
    return results


def report(results):
    rows = []
    steady = {}
    for name in ("default", "inactivity_only", "no_timeouts"):
        stats = results[name].stats
        series = _series(stats)
        conns, mem = _steady(series)
        steady[name] = (conns, mem)
        peak_conns = max((s[1] for s in series), default=0)
        peak_mem = max((s[2] for s in series), default=0)
        oom = results[name].oom_at
        rows.append([
            name,
            f"{conns:,.0f}",
            f"{mem / 1e6:.1f} MB",
            f"{peak_conns:,.0f}",
            f"{peak_mem / 1e6:.1f} MB",
            f"OOM @ {oom:.0f}s" if oom else "completed",
        ])
    lines = table(
        ["scheme", "steady conns", "steady mem", "peak conns",
         "peak mem", "outcome"], rows)
    conn_ratio = steady["inactivity_only"][0] / max(steady["default"][0], 1)
    mem_ratio = steady["inactivity_only"][1] / max(steady["default"][1], 1)
    lines.append("")
    lines.append(f"default vs 5min-only: {conn_ratio:.1f}x fewer "
                 f"concurrent connections, {mem_ratio:.1f}x less memory "
                 f"(paper: 7.7x and 6.4x)")
    oom = results["no_timeouts"].oom_at
    lines.append(f"no-timeouts run: "
                 f"{'OOM at %.0fs' % oom if oom else 'no OOM'} "
                 f"(paper: OOM at ~660s of a 1800s run)")
    lines.append("")
    lines.append("time series (minute, live conns, memory MB):")
    for name in ("default", "inactivity_only", "no_timeouts"):
        series = _series(results[name].stats, bucket=120.0)
        points = " ".join(
            f"{int(t // 60)}m:{c:,.0f}/{m / 1e6:.0f}MB"
            for t, c, m in series[:15]
        )
        lines.append(f"  {name:16s} {points}")
    emit("fig8_memory", lines)
    return steady, conn_ratio, mem_ratio


def test_fig8_memory(benchmark):
    results = benchmark.pedantic(run_figure8, rounds=1, iterations=1)
    steady, conn_ratio, mem_ratio = report(results)
    # Two-tier timeouts track several-fold fewer connections and less
    # memory than a flat 5-minute timeout.
    assert conn_ratio > 3
    assert mem_ratio > 3
    # With no timeouts, memory grows until the cap is exceeded before
    # the 30-minute run completes.
    assert results["no_timeouts"].out_of_memory
    assert results["no_timeouts"].oom_at < DURATION
    # The bounded schemes finish.
    assert not results["default"].out_of_memory
    assert not results["inactivity_only"].out_of_memory


if __name__ == "__main__":
    report(run_figure8())
