"""Ablation — lazy pass-through reassembly vs traditional buffering.

Section 5.2 argues that copying every payload into per-flow receive
buffers is wasted work when streams are mostly in order and most
connections stop needing payload early. Two subscriptions make the
point from both ends:

* **TLS handshakes** — parsing stops right after the handshake, so
  *either* reassembler touches very little payload; the buffered
  penalty is small. (This is itself the paper's laziness at work: the
  subscription, not the reassembler, is what saves the cycles here.)
* **HTTP transactions** — the parser stays active for the connection's
  life, so the traditional design memcpys the whole stream while the
  lazy design just passes packets through.
"""

from __future__ import annotations

import pytest

from _util import emit, table
from repro import Runtime, RuntimeConfig, Stage
from repro.traffic import CampusProfile, CampusTrafficGenerator
from repro.traffic.distributions import ServiceMix

TASKS = [
    ("tls handshakes", "tls", "tls_handshake"),
    ("http transactions", "http", "http_transaction"),
]


def _run(traffic, filter_str, datatype, reassembler):
    runtime = Runtime(
        RuntimeConfig(cores=8, reassembler=reassembler),
        filter_str=filter_str,
        datatype=datatype,
        callback=lambda obj: None,
    )
    return runtime.run(iter(traffic)).stats


def run_ablation():
    profile = CampusProfile(
        service_mix=ServiceMix(tls=0.40, http=0.40, ssh=0.05,
                               opaque_tcp=0.15))
    traffic = CampusTrafficGenerator(seed=31, profile=profile).packets(
        duration=0.5, gbps=0.4)
    results = {}
    for label, filter_str, datatype in TASKS:
        for reassembler in ("lazy", "buffered"):
            results[(label, reassembler)] = _run(
                traffic, filter_str, datatype, reassembler)
    return results


def report(results):
    rows = []
    ratios = {}
    for label, _, _ in TASKS:
        lazy = results[(label, "lazy")]
        buffered = results[(label, "buffered")]
        ratio = (buffered.stage_cycles[Stage.REASSEMBLY] /
                 max(lazy.stage_cycles[Stage.REASSEMBLY], 1))
        ratios[label] = ratio
        for name, stats in (("lazy", lazy), ("buffered", buffered)):
            rows.append([
                label,
                name,
                stats.stage_invocations[Stage.REASSEMBLY],
                f"{stats.stage_cycles[Stage.REASSEMBLY] / 1e6:.2f}M",
                f"{stats.cycles_per_ingress_packet:.1f}",
                f"{stats.max_zero_loss_gbps():.1f}",
            ])
    lines = table(
        ["task", "reassembler", "reasm invocations", "reasm cycles",
         "cycles/pkt", "zero-loss Gbps (8 cores)"], rows)
    lines.append("")
    for label, ratio in ratios.items():
        lines.append(f"{label}: buffered burns {ratio:.1f}x the "
                     f"reassembly-stage cycles of lazy")
    lines.append("The TLS gap is small because the subscription stops "
                 "reassembly after the handshake either way — the "
                 "laziness moves up a level, exactly as Section 5.2 "
                 "describes.")
    emit("ablation_lazy_reassembly", lines)
    return ratios


def test_ablation_lazy_reassembly(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    ratios = report(results)
    for label, _, _ in TASKS:
        lazy = results[(label, "lazy")]
        buffered = results[(label, "buffered")]
        # Same results delivered either way...
        assert lazy.callbacks == buffered.callbacks
        assert lazy.sessions_matched == buffered.sessions_matched
        # ...but buffering never wins.
        assert ratios[label] > 1.1
    # The long-lived-parse task shows the big copy penalty.
    assert ratios["http transactions"] > 1.8
    assert ratios["http transactions"] > ratios["tls handshakes"]


if __name__ == "__main__":
    report(run_ablation())
