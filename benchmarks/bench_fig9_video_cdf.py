"""Figure 9 — CDF of bytes up/down for Netflix and YouTube sessions.

Reproduces the Section 7.3 application: subscribe to TCP connection
records filtered by the video services' SNI patterns
(``(.+?\\.)?nflxvideo\\.net`` and ``googlevideo``), aggregate flows
into video sessions, and report the per-session byte distributions.

Expected shape (paper): downstream bytes per session are orders of
magnitude above upstream; Netflix sessions skew larger than YouTube;
both downstream CDFs span roughly 0.1 MB to several GB.
"""

from __future__ import annotations

import random

import pytest

from _util import emit, table
from repro import Runtime, RuntimeConfig
from repro.analysis import VideoSessionAggregator
from repro.traffic import FlowSpec, tls_flow

SERVICES = {
    "netflix": (r"tcp.port = 443 and tls.sni ~ '(.+?\.)?nflxvideo\.net'",
                "occ-0-{i}.1.nflxvideo.net", 1_600_000),
    "youtube": (r"tcp.port = 443 and tls.sni ~ 'googlevideo'",
                "rr{i}---sn-abc.googlevideo.com", 750_000),
}


def _video_traffic(seed, sni_template, mean_chunk, n_clients=18):
    """Video sessions: several parallel flows per client, each a chain
    of large downstream segments with small upstream requests."""
    rng = random.Random(seed)
    flows = []
    for client in range(n_clients):
        client_ip = f"10.9.{client // 200}.{client % 200 + 1}"
        session_start = rng.uniform(0, 5.0)
        for flow_index in range(rng.randint(2, 5)):
            chunk = int(rng.lognormvariate(0, 0.8) * mean_chunk)
            flows.append(tls_flow(
                FlowSpec(client_ip, f"45.57.{client % 100}.9",
                         41000 + client * 8 + flow_index, 443),
                sni_template.format(i=client),
                start_ts=session_start + flow_index * 0.8,
                appdata_bytes=max(chunk, 50_000),
                appdata_up_bytes=max(chunk // 400, 400),
                rng=rng,
            ))
    packets = sorted((m for f in flows for m in f),
                     key=lambda m: m.timestamp)
    return packets


def run_figure9():
    sessions = {}
    for service, (filter_str, sni_template, mean_chunk) in \
            SERVICES.items():
        aggregator = VideoSessionAggregator(service)
        runtime = Runtime(
            RuntimeConfig(cores=8),
            filter_str=filter_str,
            datatype="connection",
            callback=aggregator,
        )
        traffic = _video_traffic(hash(service) % 1000, sni_template,
                                 mean_chunk)
        runtime.run(iter(traffic))
        aggregator.finish()
        sessions[service] = aggregator
    return sessions


def _quantiles(values, qs=(0.1, 0.25, 0.5, 0.75, 0.9)):
    if not values:
        return [0.0] * len(qs)
    ordered = sorted(values)
    return [ordered[min(int(q * len(ordered)), len(ordered) - 1)]
            for q in qs]


def report(sessions):
    rows = []
    stats = {}
    for service, aggregator in sessions.items():
        for direction in ("up", "down"):
            values = [
                s.bytes_up if direction == "up" else s.bytes_down
                for s in aggregator.sessions
            ]
            mb = [v / 1e6 for v in values]
            stats[(service, direction)] = mb
            quantiles = _quantiles(mb)
            rows.append([f"{service} {direction}",
                         len(mb)] + [f"{q:.3f}" for q in quantiles])
    lines = table(
        ["series", "sessions", "P10 MB", "P25 MB", "P50 MB", "P75 MB",
         "P90 MB"], rows)
    lines.append("")
    lines.append("Paper reference: downstream >> upstream for both "
                 "services; heavy-tailed session sizes.")
    emit("fig9_video_cdf", lines)
    return stats


def test_fig9_video_cdf(benchmark):
    sessions = benchmark.pedantic(run_figure9, rounds=1, iterations=1)
    stats = report(sessions)
    for service in SERVICES:
        down = stats[(service, "down")]
        up = stats[(service, "up")]
        assert down, f"no {service} sessions captured"
        # Downstream dominates upstream by orders of magnitude.
        assert sorted(down)[len(down) // 2] > \
            sorted(up)[len(up) // 2] * 20
    # Netflix sessions skew larger than YouTube (chunk sizes differ).
    netflix_median = sorted(stats[("netflix", "down")])[
        len(stats[("netflix", "down")]) // 2]
    youtube_median = sorted(stats[("youtube", "down")])[
        len(stats[("youtube", "down")]) // 2]
    assert netflix_median > youtube_median


if __name__ == "__main__":
    report(run_figure9())
